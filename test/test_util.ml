(* Tests for the statistics, RNG and table utilities (lib/util). *)

module Rng = Repro_util.Rng
module Stats = Repro_util.Stats
module Table = Repro_util.Table
module Clock = Repro_util.Clock

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-2))

(* ------------------------------- Rng -------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_in () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xs = Array.init 16 (fun _ -> Rng.int a 1000000) in
  let ys = Array.init 16 (fun _ -> Rng.int b 1000000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_copy () =
  let a = Rng.create 9 in
  ignore (Rng.int a 10);
  let b = Rng.copy a in
  Alcotest.(check int) "copy replays" (Rng.int a 1000) (Rng.int b 1000)

let test_rng_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 11 in
  let xs = Array.init 20000 (fun _ -> Rng.gaussian rng ~mean:3.0 ~stddev:2.0) in
  check_float_loose "mean" 3.0 (Stats.mean xs);
  Alcotest.(check bool) "stddev close" true
    (abs_float (Stats.stddev xs -. 2.0) < 0.1)

let test_rng_chance_extremes () =
  let rng = Rng.create 13 in
  Alcotest.(check bool) "p=1 always true" true (Rng.chance rng 1.0);
  Alcotest.(check bool) "p=0 always false" false (Rng.chance rng 0.0)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 17 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------ Stats ------------------------------- *)

let test_mean_median () =
  check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "median even" 2.5 (Stats.median [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "median odd" 3.0 (Stats.median [| 5.0; 3.0; 1.0 |])

let test_variance () =
  check_float "variance" 2.5 (Stats.variance [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  check_float "variance single" 0.0 (Stats.variance [| 42.0 |])

let test_mad () =
  check_float "mad" 1.0 (Stats.mad [| 1.0; 2.0; 3.0; 4.0; 5.0 |])

let test_outlier_removal () =
  let xs = [| 10.0; 10.1; 9.9; 10.05; 9.95; 50.0 |] in
  let kept = Stats.remove_outliers_mad xs in
  Alcotest.(check int) "outlier dropped" 5 (Array.length kept);
  Alcotest.(check bool) "50 removed" false (Array.exists (fun x -> x = 50.0) kept)

let test_outlier_removal_uniform () =
  (* When MAD = 0 (all equal) the input must come back unchanged. *)
  let xs = [| 3.0; 3.0; 3.0 |] in
  Alcotest.(check int) "unchanged" 3 (Array.length (Stats.remove_outliers_mad xs))

let test_t_test_distinguishes () =
  let rng = Rng.create 23 in
  let a = Array.init 30 (fun _ -> Rng.gaussian rng ~mean:10.0 ~stddev:0.5) in
  let b = Array.init 30 (fun _ -> Rng.gaussian rng ~mean:12.0 ~stddev:0.5) in
  Alcotest.(check bool) "a < b significant" true (Stats.significantly_less a b);
  Alcotest.(check bool) "b < a not significant" false (Stats.significantly_less b a)

let test_t_test_same_mean () =
  let rng = Rng.create 29 in
  let a = Array.init 30 (fun _ -> Rng.gaussian rng ~mean:10.0 ~stddev:2.0) in
  let b = Array.init 30 (fun _ -> Rng.gaussian rng ~mean:10.0 ~stddev:2.0) in
  let p = Stats.welch_t_test a b in
  Alcotest.(check bool) "p not tiny" true (p > 0.001)

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p50" 3.0 (Stats.percentile xs 50.0);
  check_float "p100" 5.0 (Stats.percentile xs 100.0);
  check_float "p25" 2.0 (Stats.percentile xs 25.0)

let test_bootstrap_ci_covers () =
  let rng = Rng.create 31 in
  let xs = Array.init 200 (fun _ -> Rng.gaussian rng ~mean:5.0 ~stddev:1.0) in
  let ci = Stats.bootstrap_ci rng ~confidence:0.95 Stats.mean xs in
  Alcotest.(check bool) "CI around 5" true (ci.Stats.lo < 5.0 && ci.Stats.hi > 5.0);
  Alcotest.(check bool) "CI narrow" true (ci.Stats.hi -. ci.Stats.lo < 0.5)

let test_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |])

(* ------------------------------ Table ------------------------------- *)

let test_display_width () =
  Alcotest.(check int) "ascii" 5 (Table.display_width "hello");
  Alcotest.(check int) "empty" 0 (Table.display_width "");
  (* µ is 2 bytes but 1 column; 1.44× likewise *)
  Alcotest.(check int) "multibyte" 3 (Table.display_width "5\xc2\xb5s");
  Alcotest.(check int) "utf8 times sign" 5 (Table.display_width "1.44\xc3\x97");
  (* ANSI SGR color sequences occupy no columns *)
  Alcotest.(check int) "ansi colored" 3
    (Table.display_width "\027[31mred\027[0m");
  Alcotest.(check int) "ansi only" 0 (Table.display_width "\027[1;32m");
  Alcotest.(check int) "mixed" 4
    (Table.display_width "\027[36m\xc2\xb5b\027[0mar")

(* Every rendered line must occupy the same number of display columns,
   even when cells mix plain ASCII, multibyte UTF-8 and ANSI colors.
   Before display-width-aware padding, byte-length padding misaligned
   any row containing either. *)
let test_render_aligns_multibyte_and_ansi () =
  let out =
    Table.render ~header:[ "name"; "time" ]
      [ [ "plain"; "12" ];
        [ "5\xc2\xb5s"; "3" ];              (* multibyte cell *)
        [ "\027[31mred\027[0m"; "456" ];    (* ANSI-colored cell *)
      ]
  in
  let widths =
    List.filter_map
      (fun line ->
         if String.trim line = "" then None
         else Some (Table.display_width line))
      (String.split_on_char '\n' out)
  in
  (match widths with
   | [] -> Alcotest.fail "render produced no lines"
   | w :: rest ->
     List.iteri
       (fun i w' ->
          Alcotest.(check int)
            (Printf.sprintf "line %d same display width" (i + 1))
            w w')
       rest);
  (* and the exact layout is stable *)
  Alcotest.(check bool) "multibyte row padded to column width" true
    (List.exists
       (fun line ->
          String.length line >= 4 && String.sub line 0 4 = "5\xc2\xb5s")
       (String.split_on_char '\n' out))

let test_render_right_alignment_with_ansi () =
  (* right-aligned numeric column: the ANSI cell must line up with the
     plain ones on its last column *)
  let out =
    Table.render ~aligns:[ Table.Left; Table.Right ]
      ~header:[ "k"; "v" ]
      [ [ "a"; "10" ]; [ "b"; "\027[32m7\027[0m" ] ]
  in
  let lines =
    List.filter (fun l -> String.trim l <> "")
      (String.split_on_char '\n' out)
  in
  let ends_at line =
    (* display column of the last visible character *)
    Table.display_width line
  in
  match lines with
  | _header :: data ->
    let cols = List.map ends_at data in
    (match cols with
     | c :: rest ->
       List.iter
         (fun c' ->
            Alcotest.(check int) "right edge aligned" c c')
         rest
     | [] -> Alcotest.fail "no data rows")
  | [] -> Alcotest.fail "no output"

(* ----------------------- typed comparators -------------------------- *)

(* Regression tests for the polymorphic-compare replacement: every sort on
   a hot or determinism-critical path uses a typed comparator
   (Float.compare / Int.compare).  These lock in the total order the typed
   comparators guarantee — polymorphic compare treats -0.0 = 0.0 and would
   leave such ties ordered by whatever the sort implementation does. *)

let test_float_compare_total_order () =
  (* Float.compare is a total order with NaN below everything, so sorts
     and percentiles stay deterministic even with NaN measurements
     present, independent of input order. *)
  Alcotest.(check bool) "nan sorts first" true
    (Float.is_nan (Stats.percentile [| 2.0; nan; 1.0 |] 0.0));
  let a = Stats.percentile [| nan; 2.0; 1.0 |] 100.0 in
  let b = Stats.percentile [| 1.0; 2.0; nan |] 100.0 in
  check_float "nan placement independent of input order" a b

let test_trace_event_order_is_emission_order () =
  let module Trace = Repro_util.Trace in
  (* Freeze the clock: every event gets the identical timestamp, so the
     sort in [Trace.events] must fall back to the (tid, seq) tie-break.
     On one domain that is emission order — a polymorphic compare would
     instead tie-break on the record's remaining fields (name, phase) and
     reorder same-timestamp spans alphabetically. *)
  Trace.set_clock (fun () -> 42.0);
  Trace.reset ();
  Trace.enable ();
  Trace.span "zebra" (fun () -> ());
  Trace.span "apple" (fun () -> ());
  Trace.span "mango" (fun () -> ());
  let names =
    List.filter_map
      (fun e ->
         if e.Trace.ev_ph = Trace.B then Some e.Trace.ev_name else None)
      (Trace.events ())
  in
  Trace.disable ();
  Trace.set_clock (fun () -> Unix.gettimeofday ());
  Trace.reset ();
  Alcotest.(check (list string)) "same-timestamp spans keep emission order"
    [ "zebra"; "apple"; "mango" ] names

let test_counter_listing_sorted_by_name () =
  let module Trace = Repro_util.Trace in
  (* Counter listings must order by name alone (String.compare on the
     key), never by the (key, value) pair — insertion order and counter
     values are nondeterministic under [-j N], the names are not. *)
  Trace.reset ();
  Trace.enable ();
  Trace.add "zeta.last" 1;
  Trace.add "alpha.first" 900;
  Trace.add "mid.dle" 5;
  let names = List.map fst (Trace.counters ()) in
  Trace.disable ();
  Trace.reset ();
  Alcotest.(check (list string)) "counters sorted by name"
    [ "alpha.first"; "mid.dle"; "zeta.last" ] names;
  Alcotest.(check bool) "order matches String.compare" true
    (List.sort String.compare names = names)

let test_block_order_insertion_independent () =
  let module Hir = Repro_hgraph.Hir in
  let module Binary = Repro_lir.Binary in
  (* Two structurally identical functions whose blocks were inserted into
     the hashtable in different orders must print identically — blocks
     ascending by bid under Int.compare — and therefore share one
     Binary.digest.  The digest keys both the Evalpool binary memo and
     the block-plan cache, so a hash-order-dependent listing would split
     (or worse, alias) cache entries across runs. *)
  let make order =
    let f =
      { Hir.f_mid = 900; f_name = "order"; f_nparams = 0; f_nregs = 2;
        f_blocks = Hashtbl.create 8; f_entry = 2; f_next_bid = 11;
        f_pressure = None }
    in
    List.iter
      (fun bid ->
         let blk =
           if bid = 2 then { Hir.insns = []; term = Hir.Goto 7 }
           else if bid = 7 then
             { Hir.insns = [ Hir.Const (0, Repro_dex.Bytecode.Cint 4) ];
               term = Hir.Goto 10 }
           else { Hir.insns = []; term = Hir.Ret (Some 0) }
         in
         Hashtbl.replace f.Hir.f_blocks bid blk)
      order;
    f
  in
  let a = make [ 10; 2; 7 ] and b = make [ 2; 7; 10 ] in
  let sa = Hir.to_string a in
  Alcotest.(check string) "listing independent of insertion order"
    sa (Hir.to_string b);
  let pos tag = Astring.String.find_sub ~sub:tag sa in
  let p2 = pos "b2:" and p7 = pos "b7:" and p10 = pos "b10:" in
  Alcotest.(check bool) "blocks ascend by bid" true
    (match p2, p7, p10 with
     | Some p2, Some p7, Some p10 -> p2 < p7 && p7 < p10
     | _ -> false);
  Alcotest.(check string) "one digest, one cache identity"
    (Binary.digest (Binary.create [ a ]))
    (Binary.digest (Binary.create [ b ]))

(* --------------------------- qcheck props --------------------------- *)

let prop_median_bounds =
  QCheck.Test.make ~name:"median within min..max" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 40) (float_range (-1e6) 1e6))
    (fun xs ->
       let m = Stats.median xs in
       let lo = Array.fold_left min xs.(0) xs in
       let hi = Array.fold_left max xs.(0) xs in
       m >= lo && m <= hi)

let prop_outlier_subset =
  QCheck.Test.make ~name:"outlier removal returns a subset" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 40) (float_range (-1e3) 1e3))
    (fun xs ->
       let kept = Stats.remove_outliers_mad xs in
       Array.length kept >= 1
       && Array.for_all (fun k -> Array.exists (fun x -> x = k) xs) kept)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(pair
              (array_of_size Gen.(int_range 1 40) (float_range (-1e3) 1e3))
              (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
    (fun (xs, (p1, p2)) ->
       let lo = min p1 p2 and hi = max p1 p2 in
       Stats.percentile xs lo <= Stats.percentile xs hi)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_median_bounds; prop_outlier_subset; prop_percentile_monotone ]

(* ------------------------------ Clock -------------------------------- *)

(* The monotonic clamp: a wall clock stepped backwards (NTP) must never
   yield a decreasing [now] or a negative elapsed time — the bug that
   used to corrupt trace spans and worker timings on long-lived serves. *)
let test_clock_clamps_backward_steps () =
  let script = ref [ 100.0; 105.0; 103.0; 104.0; 110.0 ] in
  let fake () =
    match !script with
    | [] -> 110.0
    | t :: rest -> script := rest; t
  in
  Clock.set_source fake;
  Fun.protect ~finally:Clock.use_wall_clock @@ fun () ->
  let base = Clock.backward_steps () in
  let a = Clock.now () in            (* 100 *)
  let b = Clock.now () in            (* 105 *)
  let c = Clock.now () in            (* 103 -> clamped to 105 *)
  let d = Clock.now () in            (* 104 -> clamped to 105 *)
  let e = Clock.now () in            (* 110 *)
  check_float "first" 100.0 a;
  check_float "advances" 105.0 b;
  check_float "backward step clamped" 105.0 c;
  check_float "still clamped" 105.0 d;
  check_float "resumes when real time catches up" 110.0 e;
  Alcotest.(check int) "backward steps counted" (base + 2)
    (Clock.backward_steps ())

let test_clock_elapsed_never_negative () =
  let t = ref 50.0 in
  Clock.set_source (fun () -> !t);
  Fun.protect ~finally:Clock.use_wall_clock @@ fun () ->
  let t0 = Clock.now () in
  t := 49.0;                          (* clock stepped backwards mid-span *)
  Alcotest.(check bool) "elapsed clamped to zero" true
    (Clock.elapsed t0 >= 0.0);
  t := 52.5;
  check_float "normal elapsed" 2.5 (Clock.elapsed t0)

let () =
  Alcotest.run "util"
    [ ("rng",
       [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
         Alcotest.test_case "bounds" `Quick test_rng_bounds;
         Alcotest.test_case "int_in" `Quick test_rng_int_in;
         Alcotest.test_case "split independent" `Quick test_rng_split_independent;
         Alcotest.test_case "copy" `Quick test_rng_copy;
         Alcotest.test_case "float range" `Quick test_rng_float_range;
         Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
         Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
         Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation ]);
      ("stats",
       [ Alcotest.test_case "mean/median" `Quick test_mean_median;
         Alcotest.test_case "variance" `Quick test_variance;
         Alcotest.test_case "mad" `Quick test_mad;
         Alcotest.test_case "outlier removal" `Quick test_outlier_removal;
         Alcotest.test_case "outlier removal uniform" `Quick test_outlier_removal_uniform;
         Alcotest.test_case "t-test distinguishes" `Quick test_t_test_distinguishes;
         Alcotest.test_case "t-test same mean" `Quick test_t_test_same_mean;
         Alcotest.test_case "percentile" `Quick test_percentile;
         Alcotest.test_case "bootstrap ci" `Quick test_bootstrap_ci_covers;
         Alcotest.test_case "geomean" `Quick test_geomean ]);
      ("table",
       [ Alcotest.test_case "display width" `Quick test_display_width;
         Alcotest.test_case "multibyte/ANSI alignment" `Quick
           test_render_aligns_multibyte_and_ansi;
         Alcotest.test_case "right alignment with ANSI" `Quick
           test_render_right_alignment_with_ansi ]);
      ("typed comparators",
       [ Alcotest.test_case "Float.compare total order" `Quick
           test_float_compare_total_order;
         Alcotest.test_case "trace tie-break is emission order" `Quick
           test_trace_event_order_is_emission_order;
         Alcotest.test_case "counter listing sorted by name" `Quick
           test_counter_listing_sorted_by_name;
         Alcotest.test_case "block order insertion-independent" `Quick
           test_block_order_insertion_independent ]);
      ("clock",
       [ Alcotest.test_case "backward steps clamped" `Quick
           test_clock_clamps_backward_steps;
         Alcotest.test_case "elapsed never negative" `Quick
           test_clock_elapsed_never_negative ]);
      ("stats-properties", qcheck_cases) ]
