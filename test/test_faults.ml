(* Fault-injection campaign: prove the verification net.

   The paper's safety story (§3.4) is that replay verification maps let the
   pipeline discard miscompiled binaries before a user ever runs them.  These
   tests manufacture the failures that story must survive:

   - unit tests pin the Faults registry itself (spec parsing, determinism of
     the fire decision, scoping, counting);
   - a qcheck campaign plants each class of semantic miscompilation
     (flip-branch, drop-store, corrupt-const, reorder-suspend) into a
     known-good region binary and asserts every mutant is either caught by
     Verify.check or provably benign under a full differential replay;
   - loader/executor fault points are shown to surface as non-Passed verdicts
     whenever they actually fire;
   - a full GA run at a 10% fault rate still returns a verified-correct
     winner, byte-identical across -j1 / -j4.

   FAULTS_COUNT overrides the per-mutator case budget (CI smoke runs use a
   small value; the acceptance campaign uses the default, >= 200 total). *)

module Faults = Repro_util.Faults
module Rng = Repro_util.Rng
module Ga = Repro_search.Ga
module Pipeline = Repro_core.Pipeline
module App = Repro_apps.Registry
module Lir = Repro_lir
module Hir = Repro_hgraph.Hir
module Vm = Repro_vm
open Repro_capture

let faults_count =
  match Option.bind (Sys.getenv_opt "FAULTS_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 60

(* Tests must never leak an armed registry into each other (alcotest runs
   them in one process). *)
let clean f () =
  Fun.protect
    ~finally:(fun () -> Faults.disable (); Pipeline.reset_quarantine ())
    f

(* --------------------------- registry unit tests --------------------- *)

let cfg ?(seed = 7) ?(rate = 0.5) ?only () =
  { Faults.fseed = seed; frate = rate; fonly = only }

let test_spec_roundtrip () =
  let specs =
    [ "seed=3,rate=0.25";
      "seed=0,rate=1";
      "seed=42,rate=0.1,only=miscompile+exec-hang";
      "rate=0.5";
      "seed=9" ]
  in
  List.iter
    (fun s ->
      match Faults.parse_spec s with
      | Error e -> Alcotest.failf "spec %S rejected: %s" s e
      | Ok c ->
        (match Faults.parse_spec (Faults.spec_string c) with
         | Ok c' ->
           Alcotest.(check bool) ("roundtrip " ^ s) true (c = c')
         | Error e -> Alcotest.failf "canonical %S rejected: %s" s e))
    specs

let test_spec_errors () =
  List.iter
    (fun s ->
      match Faults.parse_spec s with
      | Ok _ -> Alcotest.failf "spec %S should be rejected" s
      | Error _ -> ())
    [ "rate=2.0"; "rate=-0.1"; "seed=x"; "only=not-a-point"; "bogus=1" ]

let test_fire_deterministic_and_bounded () =
  clean (fun () ->
    (* rate 0: never fires; rate 1: always fires *)
    Faults.enable (cfg ~rate:0.0 ());
    for key = 0 to 99 do
      List.iter
        (fun p ->
          Alcotest.(check bool) "rate 0 never fires" false
            (Faults.fire p ~key))
        Faults.all_points
    done;
    Faults.enable (cfg ~rate:1.0 ());
    for key = 0 to 99 do
      List.iter
        (fun p ->
          Alcotest.(check bool) "rate 1 always fires" true
            (Faults.fire p ~key))
        Faults.all_points
    done;
    (* the decision is a pure function of (seed, point, key) *)
    Faults.enable (cfg ~rate:0.3 ());
    let sample () =
      List.concat_map
        (fun p -> List.init 200 (fun key -> Faults.fire p ~key))
        Faults.all_points
    in
    let a = sample () in
    Alcotest.(check bool) "fire is replayable" true (a = sample ());
    Alcotest.(check bool) "rate 0.3 fires sometimes" true
      (List.exists Fun.id a);
    Alcotest.(check bool) "rate 0.3 spares sometimes" true
      (List.exists not a))
    ()

let test_only_filter () =
  clean (fun () ->
    Faults.enable (cfg ~rate:1.0 ~only:[ Faults.Exec_hang ] ());
    Alcotest.(check bool) "selected point fires" true
      (Faults.fire Faults.Exec_hang ~key:1);
    List.iter
      (fun p ->
        if p <> Faults.Exec_hang then
          Alcotest.(check bool)
            ("filtered point " ^ Faults.point_name p ^ " silent")
            false (Faults.fire p ~key:1))
      Faults.all_points)
    ()

let test_disabled_is_silent () =
  Faults.disable ();
  List.iter
    (fun p ->
      Alcotest.(check bool) "disabled never fires" false (Faults.fire p ~key:0))
    Faults.all_points;
  Alcotest.(check bool) "no scope outside scoped" true
    (Faults.scope_key () = None)

let test_scoped_restores () =
  clean (fun () ->
    Faults.enable (cfg ());
    Alcotest.(check bool) "no scope initially" true (Faults.scope_key () = None);
    let inner =
      Faults.scoped ~key:17 (fun () ->
        let outer = Faults.scope_key () in
        let nested = Faults.scoped ~key:99 (fun () -> Faults.scope_key ()) in
        (outer, nested, Faults.scope_key ()))
    in
    Alcotest.(check bool) "scope visible / nested / restored" true
      (inner = (Some 17, Some 99, Some 17));
    Alcotest.(check bool) "scope cleared on exit" true
      (Faults.scope_key () = None);
    (* restored even when the body raises *)
    (try Faults.scoped ~key:5 (fun () -> failwith "boom") with _ -> ());
    Alcotest.(check bool) "scope cleared after raise" true
      (Faults.scope_key () = None))
    ()

let test_injection_counts () =
  clean (fun () ->
    Faults.enable (cfg ());
    Alcotest.(check int) "fresh counts" 0 (Faults.injected ());
    Faults.record Faults.Miscompile;
    Faults.record Faults.Miscompile;
    Faults.record Faults.Exec_crash;
    Alcotest.(check int) "total" 3 (Faults.injected ());
    let by_point = Faults.injected_by_point () in
    Alcotest.(check int) "per-point entries" (List.length Faults.all_points)
      (List.length by_point);
    Alcotest.(check int) "miscompile count" 2
      (List.assoc Faults.Miscompile by_point);
    Alcotest.(check int) "exec-crash count" 1
      (List.assoc Faults.Exec_crash by_point);
    Faults.enable (cfg ());
    Alcotest.(check int) "enable resets counts" 0 (Faults.injected ()))
    ()

(* ------------------------- shared replay fixture --------------------- *)

type fixture = {
  dx : Repro_dex.Bytecode.dexfile;
  snap : Snapshot.t;
  vmap : Verify.t;
  binary : Lir.Binary.t;        (* known-good region binary *)
  ref_ret : Vm.Value.t option;  (* reference interpreted replay... *)
  ref_writes : (int * int64) list;  (* ...and its full-scan write set *)
}

let fixture =
  lazy
    (let app = Option.get (App.find "FFT") in
     let cap = Option.get (Pipeline.capture_once ~seed:5 app) in
     let dx = App.dexfile app in
     let snap = cap.Pipeline.snapshot in
     let vmap = Verify.collect dx snap in
     let region = Pipeline.region_methods app cap.Pipeline.hot_mid in
     let binary = Lir.Compile.llvm_binary dx Lir.Pipelines.o2 region in
     (match Verify.check dx snap vmap binary with
      | Verify.Passed _ -> ()
      | _ -> Alcotest.fail "fixture binary does not verify");
     let r = Replay.run dx snap Replay.Interpreter in
     let ref_ret =
       match r.Replay.outcome with
       | Replay.Finished (ret, _) -> ret
       | _ -> Alcotest.fail "reference replay failed"
     in
     let ref_writes = Verify.diff_against_snapshot_full r.Replay.ctx snap in
     { dx; snap; vmap; binary; ref_ret; ref_writes })

(* Replace [mid]'s code in the fixture binary with [f']. *)
let with_mutant fx mid f' =
  let funcs =
    List.map
      (fun m ->
        if m = mid then f' else Option.get (Lir.Binary.find fx.binary m))
      (Lir.Binary.mids fx.binary)
  in
  Lir.Binary.create funcs

(* Apply mutator [m] to some function of the fixture binary, trying methods
   in an rng-rotated order so the campaign spreads damage across the whole
   region.  None when the mutator has no applicable site anywhere. *)
let plant_mutant fx m rng =
  let mids = List.sort compare (Lir.Binary.mids fx.binary) in
  let n = List.length mids in
  let start = Rng.int rng n in
  let rec go i =
    if i >= n then None
    else
      let mid = List.nth mids ((start + i) mod n) in
      let f = Option.get (Lir.Binary.find fx.binary mid) in
      match m.Lir.Passes.m_apply rng f with
      | Some f' -> Some (mid, with_mutant fx mid f')
      | None -> go (i + 1)
  in
  go 0

(* A mutant that slipped past Verify.check must be observationally equivalent
   to the interpreter: same return value, same full-scan write set. *)
let provably_benign fx mutant =
  let r = Replay.run fx.dx fx.snap (Replay.Optimized mutant) in
  match r.Replay.outcome with
  | Replay.Finished (ret, _) ->
    let same_ret =
      match ret, fx.ref_ret with
      | Some a, Some b -> Vm.Value.equal a b
      | None, None -> true
      | _ -> false
    in
    same_ret
    && Verify.diff_against_snapshot_full r.Replay.ctx fx.snap = fx.ref_writes
  | _ -> false

(* ---------------------- miscompilation campaign ---------------------- *)

(* One property per mutator class: every planted semantic fault is either
   caught by the verification map or provably benign. *)
let prop_mutator_caught m =
  QCheck.Test.make
    ~name:(Printf.sprintf "faults: %s caught or benign" m.Lir.Passes.m_name)
    ~count:faults_count
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let fx = Lazy.force fixture in
      let rng = Rng.create seed in
      match plant_mutant fx m rng with
      | None -> QCheck.assume_fail ()   (* no applicable site: vacuous *)
      | Some (mid, mutant) ->
        (match Verify.check fx.dx fx.snap fx.vmap mutant with
         | Verify.Wrong_output | Verify.Crashed _ | Verify.Hung -> true
         | Verify.Passed _ ->
           provably_benign fx mutant
           || QCheck.Test.fail_reportf
                "seed %d: %s on mid %d passed verification but differs \
                 from the interpreter"
                seed m.Lir.Passes.m_name mid))

let prop_mutators_apply =
  (* the campaign is only meaningful if each class actually finds sites *)
  QCheck.Test.make ~name:"faults: every mutator class applicable" ~count:1
    QCheck.unit
    (fun () ->
      let fx = Lazy.force fixture in
      List.for_all
        (fun m -> plant_mutant fx m (Rng.create 1) <> None)
        Lir.Passes.mutators)

(* -------------------- loader / executor fault points ----------------- *)

(* With the registry armed at rate 1 and restricted to one point, a replay
   opted in via faults_key must be damaged — and Verify.check must say so. *)
let check_point_caught point expected_verdict () =
  clean (fun () ->
    let fx = Lazy.force fixture in
    Faults.enable (cfg ~seed:3 ~rate:1.0 ~only:[ point ] ());
    let verdict = Verify.check ~faults_key:11 fx.dx fx.snap fx.vmap fx.binary in
    Alcotest.(check bool)
      (Printf.sprintf "%s fired at least once" (Faults.point_name point))
      true
      (Faults.injected () > 0);
    Alcotest.(check bool)
      (Printf.sprintf "%s -> %s" (Faults.point_name point) expected_verdict)
      true
      (match verdict, expected_verdict with
       | Verify.Crashed _, "crashed" -> true
       | Verify.Hung, "hung" -> true
       | Verify.Wrong_output, "wrong-output" -> true
       | (Verify.Wrong_output | Verify.Crashed _), "rejected" -> true
       | _ -> false);
    (* the reference interpreted replay is never in scope: unaffected *)
    let r = Replay.run fx.dx fx.snap Replay.Interpreter in
    Alcotest.(check bool) "reference replay undamaged" true
      (match r.Replay.outcome with
       | Replay.Finished (ret, _) ->
         (match ret, fx.ref_ret with
          | Some a, Some b -> Vm.Value.equal a b
          | None, None -> true
          | _ -> false)
       | _ -> false))
    ()

(* Storage fault points: the snapshot blob reads back damaged from the
   device store.  The injected damage travels through [Storage.read
   ?damage] — the same checksum machinery that guards real corruption —
   and must surface as a Crashed verdict with a "storage:"-prefixed
   reason, which the quarantine policy then treats like any other
   persistent failure. *)
let check_store_point_caught point () =
  clean (fun () ->
    let fx = Lazy.force fixture in
    let storage = Repro_os.Storage.create () in
    Snapshot.set_store (Some storage);
    Fun.protect
      ~finally:(fun () ->
          Snapshot.set_store None;
          Snapshot.invalidate_templates ())
      (fun () ->
         Snapshot.store storage fx.snap;
         Repro_os.Storage.flush storage;
         Snapshot.invalidate_templates ();
         Faults.enable (cfg ~seed:3 ~rate:1.0 ~only:[ point ] ());
         (match Verify.check ~faults_key:11 fx.dx fx.snap fx.vmap fx.binary with
          | Verify.Crashed msg ->
            Alcotest.(check bool) "storage-prefixed reason" true
              (String.length msg >= 8 && String.sub msg 0 8 = "storage:")
          | _ ->
            Alcotest.failf "%s did not crash the replay"
              (Faults.point_name point));
         Alcotest.(check bool) "fired" true (Faults.injected () > 0);
         (* the store itself is undamaged: injection happens on the read
            path, so an unscoped replay still verifies *)
         Faults.disable ();
         Snapshot.invalidate_templates ();
         match Verify.check fx.dx fx.snap fx.vmap fx.binary with
         | Verify.Passed _ -> ()
         | _ -> Alcotest.fail "store left damaged by read-path injection"))
    ()

let test_unscoped_replay_immune () =
  clean (fun () ->
    let fx = Lazy.force fixture in
    Faults.enable (cfg ~seed:3 ~rate:1.0 ());
    (* no faults_key: loader/executor points must stay dormant *)
    match Verify.check fx.dx fx.snap fx.vmap fx.binary with
    | Verify.Passed _ -> ()
    | _ -> Alcotest.fail "unscoped replay was damaged by armed registry")
    ()

(* --------------------- quarantine / retry policy --------------------- *)

let test_retry_distinguishes_transient () =
  clean (fun () ->
    let fx = Lazy.force fixture in
    (* Find a seed where a replay fault fires on attempt 0's scope key but
       not on attempt 1's (the verify_core site keying), then show check
       fails under the first key and passes under the second: exactly the
       transient case the retry-once policy forgives. *)
    let key_of attempt =
      Faults.combine (Faults.hash_string "some-binary") attempt
    in
    let rec find_seed seed =
      if seed > 500 then Alcotest.fail "no transient-demonstrating seed"
      else begin
        Faults.enable
          (cfg ~seed ~rate:0.5 ~only:[ Faults.Replay_collision ] ());
        let damaged k =
          match Verify.check ~faults_key:k fx.dx fx.snap fx.vmap fx.binary with
          | Verify.Passed _ -> false
          | _ -> true
        in
        if damaged (key_of 0) && not (damaged (key_of 1)) then () else
          find_seed (seed + 1)
      end
    in
    find_seed 0)
    ()

let test_pipeline_quarantines_deterministic_miscompiles () =
  clean (fun () ->
    let app = Option.get (App.find "FFT") in
    let cap = Option.get (Pipeline.capture_once ~seed:5 app) in
    let env = Pipeline.make_eval_env ~seed:21 app cap in
    let genome =
      List.map
        (fun (name, ps) -> { Repro_search.Genome.g_pass = name; g_params = ps })
        Lir.Pipelines.o2
    in
    (* Miscompile faults are keyed by genome, not replay attempt: a hit
       fails verification twice and must be quarantined, never measured.
       Some fault seeds pick only behaviour-preserving mutations (e.g.
       reorder-suspend), so search for a seed whose damage is observable
       under a fault-free check first. *)
    let rec miscompiled seed =
      if seed > 50 then Alcotest.fail "no observable miscompile seed found"
      else begin
        Faults.enable
          (cfg ~seed ~rate:1.0 ~only:[ Faults.Miscompile ] ());
        match Pipeline.compile_core env genome with
        | Error _ -> miscompiled (seed + 1)
        | Ok binary ->
          (match
             Verify.check env.Pipeline.dx
               env.Pipeline.capture.Pipeline.snapshot env.Pipeline.vmap binary
           with
           | Verify.Passed _ -> miscompiled (seed + 1)
           | _ -> binary)
      end
    in
    let binary = miscompiled 0 in
    Pipeline.reset_quarantine ();
    (match Pipeline.verify_core env binary with
     | Pipeline.Core_quarantined _ -> ()
     | Pipeline.Core_measured _ ->
       Alcotest.fail "miscompiled binary was measured, not quarantined"
     | _ -> Alcotest.fail "unexpected verify_core outcome");
    let q = Pipeline.quarantine_summary () in
    Alcotest.(check bool) "quarantine log records the binary" true
      (List.length q = 1 && (List.hd q).Pipeline.q_count >= 1))
    ()

(* ------------------------- GA under faults --------------------------- *)

let tiny_cfg =
  { Ga.quick_config with population = 8; generations = 4; max_identical = 30 }

let fingerprint (o : Pipeline.optimized) =
  ( o.Pipeline.ga.Ga.best,
    o.Pipeline.ga.Ga.history,
    o.Pipeline.ga.Ga.evaluations,
    o.Pipeline.ga.Ga.halted_early,
    o.Pipeline.best_genome )

let test_ga_under_faults () =
  clean (fun () ->
    let app = Option.get (App.find "FFT") in
    let cap = Option.get (Pipeline.capture_once ~seed:5 app) in
    Faults.enable { Faults.fseed = 42; frate = 0.10; fonly = None };
    Pipeline.reset_quarantine ();
    let run ~jobs =
      Pipeline.optimize ~seed:21 ~cfg:tiny_cfg ~jobs ~cache:true app cap
    in
    let o1 = run ~jobs:1 in
    let o4 = run ~jobs:4 in
    Alcotest.(check bool) "-j4 byte-identical to -j1 under faults" true
      (fingerprint o1 = fingerprint o4);
    Alcotest.(check bool) "faults actually fired" true (Faults.injected () > 0);
    (* the winner must be correct in a fault-free world *)
    Faults.disable ();
    (match o1.Pipeline.best_binary with
     | None -> Alcotest.fail "no verified winner under 10% fault rate"
     | Some b ->
       (match
          Verify.check o1.Pipeline.env.Pipeline.dx
            o1.Pipeline.env.Pipeline.capture.Pipeline.snapshot
            o1.Pipeline.env.Pipeline.vmap b
        with
        | Verify.Passed _ -> ()
        | _ -> Alcotest.fail "winner does not verify without faults")))
    ()

(* ----------------- cross-input corpus closes the hole ----------------- *)

(* The guard-stripping soundness hole, pinned: o2 + unsafe-bce removes
   every bounds guard, yet *passes* single-input verification on FFT —
   the captured input never makes a guard fire, so the stripped binary is
   behaviourally identical on it.  A corpus whose second input is the
   non-power-of-two size (reference traps on it) rejects the same binary.
   This is the regression test for Pipeline.capture_corpus/verify_core:
   if it ever fails at K>=2, the hole has reopened. *)
let test_pinned_unsafe_genome_needs_corpus () =
  clean (fun () ->
    let app = Option.get (App.find "FFT") in
    let co = Option.get (Pipeline.capture_corpus ~seed:5 ~k:3 app) in
    let genome = Repro_core.Experiments.pinned_unsafe_genome () in
    let env1 = Pipeline.make_eval_env ~seed:21 app co.Pipeline.co_primary in
    let binary =
      match Pipeline.compile_core env1 genome with
      | Ok b -> b
      | Error _ -> Alcotest.fail "pinned genome failed to compile"
    in
    (* K=1: the stripped binary sails through single-input verification *)
    (match Pipeline.verify_core env1 binary with
     | Pipeline.Core_measured _ -> ()
     | _ -> Alcotest.fail "pinned genome no longer passes K=1 (test setup broken)");
    (* K>=2: the corpus's trap input rejects it *)
    let envk =
      Pipeline.make_eval_env ~seed:21 ~corpus:co.Pipeline.co_entries app
        co.Pipeline.co_primary
    in
    (match Pipeline.verify_core envk binary with
     | Pipeline.Core_wrong_output | Pipeline.Core_crashed _ -> ()
     | Pipeline.Core_measured _ ->
       Alcotest.fail "guard-stripping hole is OPEN: corpus passed the binary"
     | _ -> Alcotest.fail "unexpected corpus verdict"))
    ()

(* Corpus-verified search keeps the determinism contract: byte-identical
   across -j1 / -j4 / --no-cache, independent of corpus evaluation order. *)
let test_corpus_optimize_deterministic () =
  clean (fun () ->
    let app = Option.get (App.find "FFT") in
    let co = Option.get (Pipeline.capture_corpus ~seed:5 ~k:3 app) in
    let run ~jobs ~cache =
      Pipeline.optimize ~seed:21 ~cfg:tiny_cfg ~jobs ~cache
        ~corpus:co.Pipeline.co_entries app co.Pipeline.co_primary
    in
    let o1 = run ~jobs:1 ~cache:true in
    let o4 = run ~jobs:4 ~cache:true in
    let onc = run ~jobs:1 ~cache:false in
    Alcotest.(check bool) "-j4 byte-identical to -j1 with corpus" true
      (fingerprint o1 = fingerprint o4);
    Alcotest.(check bool) "--no-cache byte-identical with corpus" true
      (fingerprint o1 = fingerprint onc);
    (* the winner verifies against the whole corpus, not just the primary *)
    match o1.Pipeline.best_binary with
    | None -> Alcotest.fail "no verified winner with corpus"
    | Some b ->
      List.iter
        (fun ce ->
           match
             Verify.check_ref o1.Pipeline.env.Pipeline.dx
               ce.Pipeline.ce_snapshot ce.Pipeline.ce_reference b
           with
           | Verify.Passed _ -> ()
           | _ -> Alcotest.fail "winner fails a corpus entry")
        co.Pipeline.co_entries)
    ()

(* --------------------------------------------------------------------- *)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "faults"
    [ ( "registry",
        [ Alcotest.test_case "spec roundtrip" `Quick test_spec_roundtrip;
          Alcotest.test_case "spec errors" `Quick test_spec_errors;
          Alcotest.test_case "fire deterministic, rate-bounded" `Quick
            test_fire_deterministic_and_bounded;
          Alcotest.test_case "only= filter" `Quick test_only_filter;
          Alcotest.test_case "disabled is silent" `Quick
            test_disabled_is_silent;
          Alcotest.test_case "scoped sets and restores" `Quick
            test_scoped_restores;
          Alcotest.test_case "injection counting" `Quick test_injection_counts
        ] );
      ( "miscompile campaign",
        q prop_mutators_apply
        :: List.map (fun m -> q (prop_mutator_caught m)) Lir.Passes.mutators );
      ( "replay and executor faults",
        [ Alcotest.test_case "collision caught" `Quick
            (check_point_caught Faults.Replay_collision "rejected");
          Alcotest.test_case "truncation caught" `Quick
            (check_point_caught Faults.Replay_truncate "rejected");
          Alcotest.test_case "register corruption caught" `Quick
            (check_point_caught Faults.Replay_regs "rejected");
          Alcotest.test_case "executor crash caught" `Quick
            (check_point_caught Faults.Exec_crash "crashed");
          Alcotest.test_case "executor hang caught" `Quick
            (check_point_caught Faults.Exec_hang "hung");
          Alcotest.test_case "wrong return caught" `Quick
            (check_point_caught Faults.Exec_wrong_ret "wrong-output");
          Alcotest.test_case "store corruption caught" `Quick
            (check_store_point_caught Faults.Store_corrupt);
          Alcotest.test_case "store truncation caught" `Quick
            (check_store_point_caught Faults.Store_truncate);
          Alcotest.test_case "unscoped replay immune" `Quick
            test_unscoped_replay_immune ] );
      ( "quarantine",
        [ Alcotest.test_case "retry forgives transients" `Quick
            test_retry_distinguishes_transient;
          Alcotest.test_case "deterministic miscompiles quarantined" `Quick
            test_pipeline_quarantines_deterministic_miscompiles ] );
      ( "search under faults",
        [ Alcotest.test_case "GA at 10% fault rate" `Slow test_ga_under_faults
        ] );
      ( "cross-input corpus",
        [ Alcotest.test_case "pinned unsafe genome needs the corpus" `Quick
            test_pinned_unsafe_genome_needs_corpus;
          Alcotest.test_case "corpus search deterministic" `Slow
            test_corpus_optimize_deterministic ] ) ]
