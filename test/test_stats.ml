(* Direct coverage for the statistical kernels the search leans on
   (lib/util/stats.ml).  [remove_outliers_mad] and [welch_t_test] were
   previously exercised only through the GA; these tests pin their edge
   cases and check the t-test against externally known p-values. *)

module Stats = Repro_util.Stats

let check_float eps = Alcotest.(check (float eps))

(* ----------------------- remove_outliers_mad ------------------------ *)

let test_mad_removes_outlier () =
  let kept = Stats.remove_outliers_mad [| 1.0; 2.0; 3.0; 4.0; 100.0 |] in
  Alcotest.(check (array (float 1e-9)))
    "outlier dropped" [| 1.0; 2.0; 3.0; 4.0 |] kept

let test_mad_zero_passthrough () =
  (* MAD = 0 (majority of points identical): the input must come back
     unchanged, even though 9.0 looks like an outlier. *)
  let xs = [| 5.0; 5.0; 5.0; 9.0 |] in
  let kept = Stats.remove_outliers_mad xs in
  Alcotest.(check (array (float 1e-9))) "unchanged" xs kept

let test_mad_small_input_passthrough () =
  (* fewer than 3 points: nothing is ever removed *)
  let xs = [| 1.0; 1000.0 |] in
  Alcotest.(check (array (float 1e-9)))
    "pair unchanged" xs (Stats.remove_outliers_mad xs)

let test_mad_threshold_edge () =
  (* xs: median 0.5, MAD 1.0; the modified z-score of 5.0 is exactly
     0.6745 * 4.5.  The comparison is [<= threshold], so a threshold at
     exactly that score keeps the point and one just below drops it. *)
  let xs = [| -1.0; 0.0; 1.0; 5.0 |] in
  let z = 0.6745 *. 4.5 in
  Alcotest.(check int) "kept at threshold" 4
    (Array.length (Stats.remove_outliers_mad ~threshold:z xs));
  Alcotest.(check int) "dropped just below" 3
    (Array.length (Stats.remove_outliers_mad ~threshold:(z -. 1e-9) xs));
  Alcotest.(check bool) "the extreme point is the one dropped" false
    (Array.exists
       (fun x -> x = 5.0)
       (Stats.remove_outliers_mad ~threshold:(z -. 1e-9) xs))

(* --------------------------- welch_t_test --------------------------- *)

(* [a] and [b] below have equal sample variance 2.5 and n = 5, so
   t = (mean a - mean b) / sqrt(2.5/5 + 2.5/5) = mean difference / 1.0.
   With the normal approximation of the t distribution the two-sided
   p-values are the textbook 2*(1 - Phi(|t|)) values. *)
let a5 = [| 1.0; 2.0; 3.0; 4.0; 5.0 |]

let test_welch_t1 () =
  let b = [| 2.0; 3.0; 4.0; 5.0; 6.0 |] in
  (* t = -1: 2*(1 - Phi(1)) = 0.317311 *)
  check_float 1e-3 "p for t=1" 0.317311 (Stats.welch_t_test a5 b)

let test_welch_t2 () =
  let b = [| 3.0; 4.0; 5.0; 6.0; 7.0 |] in
  (* t = -2: 2*(1 - Phi(2)) = 0.045500 *)
  check_float 1e-3 "p for t=2" 0.045500 (Stats.welch_t_test a5 b)

let test_welch_identical_samples () =
  (* the normal-CDF approximation is good to ~7.5e-8, not exact *)
  check_float 1e-6 "t=0 gives p=1" 1.0 (Stats.welch_t_test a5 a5)

let test_welch_degenerate () =
  let flat = [| 4.0; 4.0; 4.0 |] in
  check_float 1e-9 "zero variance, equal means" 1.0
    (Stats.welch_t_test flat flat);
  check_float 1e-9 "zero variance, distinct means" 0.0
    (Stats.welch_t_test flat [| 5.0; 5.0; 5.0 |]);
  check_float 1e-9 "n < 2 is inconclusive" 1.0
    (Stats.welch_t_test [| 1.0 |] a5)

let test_welch_symmetric () =
  let b = [| 2.5; 3.0; 4.5; 5.0; 7.0; 8.5 |] in
  check_float 1e-12 "p(a,b) = p(b,a)" (Stats.welch_t_test a5 b)
    (Stats.welch_t_test b a5)

(* --------------------------- qcheck props --------------------------- *)

let arr_gen =
  QCheck.(array_of_size QCheck.Gen.(int_range 2 30) (float_range (-100.) 100.))

let prop_welch_in_unit_interval =
  QCheck.Test.make ~name:"welch p-value in [0, 1]" ~count:300
    (QCheck.pair arr_gen arr_gen)
    (fun (a, b) ->
       let p = Stats.welch_t_test a b in
       p >= 0.0 && p <= 1.0)

let prop_welch_shift_invariant =
  QCheck.Test.make ~name:"welch p invariant under common shift" ~count:200
    (QCheck.triple arr_gen arr_gen QCheck.(float_range (-50.) 50.))
    (fun (a, b, c) ->
       let shift xs = Array.map (fun x -> x +. c) xs in
       abs_float (Stats.welch_t_test a b
                  -. Stats.welch_t_test (shift a) (shift b))
       < 1e-6)

let prop_mad_keeps_median =
  QCheck.Test.make ~name:"outlier removal never drops the median" ~count:300
    (QCheck.array_of_size QCheck.Gen.(int_range 1 30)
       (QCheck.float_range (-1e3) 1e3))
    (fun xs ->
       let m = Stats.median xs in
       let kept = Stats.remove_outliers_mad xs in
       (* the median itself has modified z-score 0 *)
       Array.length kept = Array.length xs
       || Stats.median kept = m
       || Array.exists (fun k -> abs_float (k -. m) <= Stats.mad xs) kept)

(* Population-aggregation helpers (fleet coordinator): degenerate batches
   a real device fleet produces must aggregate without raising. *)

let test_pool_preserves_order () =
  Alcotest.(check (array (float 1e-9))) "in-order concat"
    [| 1.0; 2.0; 3.0; 4.0; 5.0 |]
    (Stats.pool_samples [| [| 1.0; 2.0 |]; [| 3.0 |]; [| 4.0; 5.0 |] |])

let test_pool_empty_batches () =
  Alcotest.(check (array (float 1e-9))) "empty batches dropped"
    [| 7.0 |]
    (Stats.pool_samples [| [||]; [| 7.0 |]; [||] |]);
  Alcotest.(check int) "all-empty pools to nothing" 0
    (Array.length (Stats.pool_samples [| [||]; [||] |]));
  Alcotest.(check int) "no batches at all" 0
    (Array.length (Stats.pool_samples [||]))

let test_robust_mean_single_sample () =
  Alcotest.(check (float 1e-9)) "returned as-is" 42.5
    (Stats.robust_mean [| 42.5 |])

let test_robust_mean_empty () =
  Alcotest.(check bool) "nan, not an exception" true
    (Float.is_nan (Stats.robust_mean [||]))

let test_robust_mean_all_outliers () =
  (* zero MAD with one wild point: the filter would reject everything; the
     helper must still produce a finite mean *)
  let m = Stats.robust_mean [| 1.0; 1.0; 1.0; 1e9 |] in
  Alcotest.(check bool) "finite" true (Float.is_finite m);
  (* two-point batches: MAD is as wide as the data, nothing is rejected *)
  Alcotest.(check (float 1e-9)) "two points" 5.0
    (Stats.robust_mean [| 0.0; 10.0 |])

let test_robust_mean_filters () =
  Alcotest.(check (float 1e-6)) "outlier removed" 9.99
    (Stats.robust_mean [| 9.9; 10.0; 10.1; 10.0; 9.95; 1e6 |])

let prop_robust_mean_total =
  QCheck.Test.make ~name:"robust_mean never raises, finite on finite input"
    ~count:300
    (QCheck.array_of_size QCheck.Gen.(int_range 0 20)
       (QCheck.float_range (-1e6) 1e6))
    (fun xs ->
       let m = Stats.robust_mean xs in
       if Array.length xs = 0 then Float.is_nan m else Float.is_finite m)

let prop_pool_length =
  QCheck.Test.make ~name:"pooled length is the sum of batch lengths"
    ~count:300
    QCheck.(small_list (small_list (float_range 0.0 100.0)))
    (fun batches ->
       let arr = Array.of_list (List.map Array.of_list batches) in
       Array.length (Stats.pool_samples arr)
       = List.fold_left (fun acc b -> acc + List.length b) 0 batches)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_welch_in_unit_interval; prop_welch_shift_invariant;
      prop_mad_keeps_median; prop_robust_mean_total; prop_pool_length ]

let () =
  Alcotest.run "stats"
    [ ("remove_outliers_mad",
       [ Alcotest.test_case "removes outlier" `Quick test_mad_removes_outlier;
         Alcotest.test_case "zero MAD passthrough" `Quick
           test_mad_zero_passthrough;
         Alcotest.test_case "small input passthrough" `Quick
           test_mad_small_input_passthrough;
         Alcotest.test_case "threshold edge" `Quick test_mad_threshold_edge ]);
      ("welch_t_test",
       [ Alcotest.test_case "p at t=1" `Quick test_welch_t1;
         Alcotest.test_case "p at t=2" `Quick test_welch_t2;
         Alcotest.test_case "identical samples" `Quick
           test_welch_identical_samples;
         Alcotest.test_case "degenerate inputs" `Quick test_welch_degenerate;
         Alcotest.test_case "symmetric" `Quick test_welch_symmetric ]);
      ("population aggregation",
       [ Alcotest.test_case "pool preserves order" `Quick
           test_pool_preserves_order;
         Alcotest.test_case "pool drops empty batches" `Quick
           test_pool_empty_batches;
         Alcotest.test_case "robust mean of one sample" `Quick
           test_robust_mean_single_sample;
         Alcotest.test_case "robust mean of nothing" `Quick
           test_robust_mean_empty;
         Alcotest.test_case "robust mean of all outliers" `Quick
           test_robust_mean_all_outliers;
         Alcotest.test_case "robust mean filters outliers" `Quick
           test_robust_mean_filters ]);
      ("properties", qcheck_cases) ]
