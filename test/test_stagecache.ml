(* Tests for the staged-compilation cache: canonical prefix identity
   shared with the Evalpool genome memo, byte-identical outcomes with the
   cache on or off at any worker count, exact work-limit boundary
   behaviour on warm replays, and LRU byte-budget eviction. *)

module Ga = Repro_search.Ga
module Genome = Repro_search.Genome
module Evalpool = Repro_search.Evalpool
module Pipeline = Repro_core.Pipeline
module App = Repro_apps.Registry
module Compile = Repro_lir.Compile
module Binary = Repro_lir.Binary
module Pipelines = Repro_lir.Pipelines
module Stagecache = Repro_lir.Stagecache
module Trace = Repro_util.Trace
module Rng = Repro_util.Rng

(* One capture + evaluation environment, shared by every test below. *)
let shared =
  lazy
    (let app = Option.get (App.find "FFT") in
     let cap = Option.get (Pipeline.capture_once ~seed:5 app) in
     (app, cap, Pipeline.make_eval_env app cap))

let with_stage enabled f =
  let prev = Stagecache.enabled () in
  Stagecache.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Stagecache.set_enabled prev) f

let classify fe region g =
  match Compile.llvm_binary_staged fe (Genome.to_spec g) region with
  | b -> "ok:" ^ Binary.digest b
  | exception Compile.Compile_error msg -> "error:" ^ msg
  | exception Compile.Compile_timeout -> "timeout"

(* --------------- canonical identity (satellite regression) ----------- *)

(* A genome whose raw and canonical renderings differ: "gvn" takes no
   parameters, so a stray argument is an arity mismatch the compiler
   rejects by count alone — the value is unobservable, and the canonical
   form folds it away.  The stage-cache fingerprints and the Evalpool
   genome memo must both treat the two variants as the same genome. *)
let test_canon_folds_unobservable_params () =
  let mk pass params = { Genome.g_pass = pass; g_params = params } in
  let base = [ mk "simplifycfg" [||]; mk "dce" [||] ] in
  let g1 = mk "gvn" [| 7 |] :: base in
  let g2 = mk "gvn" [| 9 |] :: base in
  Alcotest.(check bool) "raw renderings differ" true
    (Genome.to_string g1 <> Genome.to_string g2);
  Alcotest.(check string) "canonical identity equal" (Genome.canon g1)
    (Genome.canon g2);
  let _, _, env = Lazy.force shared in
  let fe = env.Pipeline.frontend in
  let fps g =
    Stagecache.fingerprints ~frontend:(Compile.frontend_digest fe)
      (Genome.to_spec g)
  in
  Alcotest.(check (array string)) "prefix fingerprints equal" (fps g1)
    (fps g2);
  Alcotest.(check string) "same compile outcome"
    (classify fe env.Pipeline.region g1)
    (classify fe env.Pipeline.region g2);
  (* the genome memo keys on the same canonical form: evaluating the
     second variant is a hit, not a compile *)
  let pool = Pipeline.make_pool ~jobs:1 ~cache:true env in
  let o1 = (Evalpool.evaluate_batch pool [| (0, g1) |]).(0) in
  let hits_before = (Evalpool.stats pool).Evalpool.genome_hits in
  let o2 = (Evalpool.evaluate_batch pool [| (1, g2) |]).(0) in
  let hits_after = (Evalpool.stats pool).Evalpool.genome_hits in
  Alcotest.(check int) "genome memo hit" (hits_before + 1) hits_after;
  Alcotest.(check bool) "equal pool outcomes" true (o1 = o2)

(* ------------- outcome transparency (qcheck property) ---------------- *)

(* STAGECACHE_COUNT overrides the per-property case budget. *)
let case_count =
  match
    Option.bind (Sys.getenv_opt "STAGECACHE_COUNT") int_of_string_opt
  with
  | Some n when n > 0 -> n
  | Some _ | None -> 5

let prop_outcomes_transparent =
  QCheck.Test.make
    ~name:"stage cache: batch outcomes identical on/off x -j1/-j4"
    ~count:case_count
    QCheck.(int_bound 1_000_000)
    (fun seed ->
       let _, _, env = Lazy.force shared in
       let rng = Rng.create seed in
       let tasks =
         Array.init 5 (fun i -> (i, Genome.random rng))
       in
       let run ~stage ~jobs =
         with_stage stage @@ fun () ->
         Stagecache.reset ();
         let pool = Pipeline.make_pool ~jobs ~cache:false env in
         Array.to_list (Evalpool.evaluate_batch pool tasks)
       in
       let reference = run ~stage:true ~jobs:1 in
       List.for_all
         (fun (stage, jobs) -> run ~stage ~jobs = reference)
         [ (false, 1); (true, 4); (false, 4) ])

(* ------------------- work-limit boundary replay ----------------------- *)

(* A genome that times out exactly at the work limit must do so with the
   cache cold, warm (prefix replay), and disabled: recorded charges flow
   through the same counter and checks as a real run. *)
let test_work_limit_boundary () =
  let _, _, env = Lazy.force shared in
  let fe = env.Pipeline.frontend and region = env.Pipeline.region in
  let compile () = Compile.llvm_binary_staged fe Pipelines.o2 region in
  let was_enabled = Trace.enabled () in
  Trace.enable ();
  Fun.protect
    ~finally:(fun () -> if not was_enabled then Trace.disable ())
  @@ fun () ->
  Stagecache.reset ();
  let w0 = Trace.counter_value "compile.work" in
  let b_ref = compile () in
  let w = Trace.counter_value "compile.work" - w0 in
  Alcotest.(check bool) "compile charged work" true (w > 0);
  let check_at label limit expect_timeout =
    match Compile.with_work_limit limit compile with
    | b ->
      Alcotest.(check bool) (label ^ ": completed") false expect_timeout;
      Alcotest.(check string)
        (label ^ ": identical binary")
        (Binary.digest b_ref) (Binary.digest b)
    | exception Compile.Compile_timeout ->
      Alcotest.(check bool) (label ^ ": timed out") true expect_timeout
  in
  (* warm: the whole compile is resident (binary stage + prefixes) *)
  check_at "warm at limit" w false;
  check_at "warm one under" (w - 1) true;
  let s = Stagecache.stats () in
  Alcotest.(check bool) "warm replays were cache hits" true
    (s.Stagecache.binary_hits > 0 || s.Stagecache.prefix_hits > 0);
  (* cold: no cache at all, same boundary *)
  with_stage false @@ fun () ->
  check_at "cold at limit" w false;
  check_at "cold one under" (w - 1) true

(* ------------------------ LRU byte budget ----------------------------- *)

let test_lru_eviction_bounded () =
  let _, _, env = Lazy.force shared in
  let fe = env.Pipeline.frontend and region = env.Pipeline.region in
  let rng = Rng.create 7 in
  let gs = List.init 8 (fun _ -> Genome.random rng) in
  let reference =
    with_stage false @@ fun () -> List.map (classify fe region) gs
  in
  let budget = 1024 * 1024 in
  let cap0 = Stagecache.capacity_bytes () in
  Stagecache.set_capacity_bytes budget;
  Fun.protect ~finally:(fun () -> Stagecache.set_capacity_bytes cap0)
  @@ fun () ->
  Stagecache.reset ();
  let r1 = List.map (classify fe region) gs in
  let r2 = List.map (classify fe region) gs in
  let s = Stagecache.stats () in
  Alcotest.(check bool) "evictions occurred" true (s.Stagecache.evictions > 0);
  Alcotest.(check bool) "residency stayed under budget" true
    (s.Stagecache.bytes_held <= budget);
  Alcotest.(check (list string)) "first pass unchanged" reference r1;
  Alcotest.(check (list string)) "thrashing repeat unchanged" reference r2

(* -------------------- end-to-end search identity ---------------------- *)

let tiny_cfg =
  { Ga.quick_config with population = 8; generations = 3; max_identical = 30 }

let fingerprint (o : Pipeline.optimized) =
  (o.Pipeline.ga.Ga.best,
   o.Pipeline.ga.Ga.history,
   o.Pipeline.ga.Ga.evaluations,
   o.Pipeline.ga.Ga.halted_early,
   o.Pipeline.best_genome)

let test_search_identity_across_stage_cache () =
  let app, cap, _ = Lazy.force shared in
  let run ~stage ~jobs ~cache =
    with_stage stage @@ fun () ->
    Stagecache.reset ();
    fingerprint (Pipeline.optimize ~seed:11 ~cfg:tiny_cfg ~jobs ~cache app cap)
  in
  let reference = run ~stage:true ~jobs:1 ~cache:true in
  List.iter
    (fun (stage, jobs, cache) ->
       Alcotest.(check bool)
         (Printf.sprintf "stage=%b -j%d cache=%b identical" stage jobs cache)
         true
         (run ~stage ~jobs ~cache = reference))
    [ (false, 1, true); (true, 4, false); (false, 4, false) ]

let () =
  Alcotest.run "stagecache"
    [ ("canon",
       [ Alcotest.test_case "arity-mismatch params fold away" `Quick
           test_canon_folds_unobservable_params ]);
      ("transparency",
       [ QCheck_alcotest.to_alcotest prop_outcomes_transparent ]);
      ("work-limit",
       [ Alcotest.test_case "boundary identical warm/cold/off" `Quick
           test_work_limit_boundary ]);
      ("lru",
       [ Alcotest.test_case "eviction under a tiny budget" `Quick
           test_lru_eviction_bounded ]);
      ("search",
       [ Alcotest.test_case "optimize identical across stage cache" `Slow
           test_search_identity_across_stage_cache ]) ]
