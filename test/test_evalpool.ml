(* Tests for the parallel memoized evaluation engine (Evalpool) and its
   determinism contract: for a fixed seed, the GA's full evaluation history
   is byte-identical whatever the worker count and whether or not the
   genome/binary memos are enabled.  This is what lets `-j N` and caching
   be user-transparent accelerators rather than semantics changes. *)

module Ga = Repro_search.Ga
module Genome = Repro_search.Genome
module Evalpool = Repro_search.Evalpool
module Pipeline = Repro_core.Pipeline
module App = Repro_apps.Registry
module Blockexec = Repro_lir.Blockexec
module Blockplan = Repro_lir.Blockplan
module Trace = Repro_util.Trace

(* ----------------------- end-to-end determinism --------------------- *)

let tiny_cfg =
  { Ga.quick_config with population = 8; generations = 4; max_identical = 30 }

(* everything observable about a finished search *)
let fingerprint (o : Pipeline.optimized) =
  (o.Pipeline.ga.Ga.best,
   o.Pipeline.ga.Ga.history,
   o.Pipeline.ga.Ga.evaluations,
   o.Pipeline.ga.Ga.halted_early,
   o.Pipeline.best_genome)

let test_search_determinism app_name seed () =
  let app = Option.get (App.find app_name) in
  let cap = Option.get (Pipeline.capture_once ~seed:5 app) in
  let run ~jobs ~cache =
    fingerprint (Pipeline.optimize ~seed ~cfg:tiny_cfg ~jobs ~cache app cap)
  in
  let reference = run ~jobs:1 ~cache:true in
  Alcotest.(check bool) "-j 4 identical to -j 1" true
    (run ~jobs:4 ~cache:true = reference);
  Alcotest.(check bool) "--no-cache identical to cached" true
    (run ~jobs:1 ~cache:false = reference);
  Alcotest.(check bool) "-j 4 --no-cache identical too" true
    (run ~jobs:4 ~cache:false = reference)

(* ------------------- engine transparency of the search ---------------- *)

let with_engine e f =
  let prev = Blockexec.default_engine () in
  Blockexec.set_default_engine e;
  Fun.protect ~finally:(fun () -> Blockexec.set_default_engine prev) f

(* The replay engine is one more user-transparent accelerator: a full FFT
   search under the block-fused executor is byte-identical to the reference
   interpretation, whatever the worker count and memo setting.  Any fusion
   or check-hoisting bug that perturbed a single cycle anywhere in the
   search would show up here as a diverging history. *)
let test_engine_determinism () =
  let app = Option.get (App.find "FFT") in
  let cap = Option.get (Pipeline.capture_once ~seed:5 app) in
  let run ~engine ~jobs ~cache =
    with_engine engine @@ fun () ->
    fingerprint (Pipeline.optimize ~seed:3 ~cfg:tiny_cfg ~jobs ~cache app cap)
  in
  let reference = run ~engine:Blockexec.Ref ~jobs:1 ~cache:true in
  List.iter
    (fun (jobs, cache) ->
       Alcotest.(check bool)
         (Printf.sprintf "fused -j%d cache=%b = ref" jobs cache)
         true
         (run ~engine:Blockexec.Fused ~jobs ~cache = reference))
    [ (1, true); (4, true); (1, false); (4, false) ]

(* The plan cache keys on the same {!Pipeline.binary_key} digest as the
   pool's binary memo, so the two caches must stay consistent: a search
   never builds more plans than it runs verified replays (the memo already
   deduplicated identical binaries), and re-running the same search reuses
   every plan from the process-global cache even though the fresh pool's
   memo starts cold. *)
let test_plan_cache_tracks_binary_memo () =
  let app = Option.get (App.find "FFT") in
  let cap = Option.get (Pipeline.capture_once ~seed:5 app) in
  Trace.enable ();
  Trace.reset ();
  Blockplan.reset_cache ();
  Fun.protect ~finally:(fun () -> Trace.reset (); Trace.disable ())
  @@ fun () ->
  let run () =
    with_engine Blockexec.Fused @@ fun () ->
    Pipeline.optimize ~seed:3 ~cfg:tiny_cfg ~jobs:1 ~cache:true app cap
  in
  let o1 = run () in
  let builds1 = Trace.counter_value "blockexec.plan_builds" in
  Alcotest.(check bool) "plans built during the search" true (builds1 > 0);
  (* unique digests planned <= verified replays run by the pool, plus the
     handful of baseline android/-O3 replays the environment sets up *)
  let verifies = o1.Pipeline.pool_stats.Evalpool.verifies in
  Alcotest.(check bool) "at most one plan per verified replay" true
    (builds1 <= verifies + 8);
  let o2 = run () in
  Alcotest.(check int) "repeat search builds no new plan"
    builds1 (Trace.counter_value "blockexec.plan_builds");
  Alcotest.(check bool) "repeat search hits the plan cache" true
    (Trace.counter_value "blockexec.plan_cache_hits" > 0);
  Alcotest.(check int) "small searches never flush the cache" 0
    (Trace.counter_value "blockexec.plan_cache_flushes");
  Alcotest.(check int) "fresh pool re-verified the same binaries"
    verifies o2.Pipeline.pool_stats.Evalpool.verifies

(* ----------------------- synthetic pool fixtures --------------------- *)

(* Synthetic stages over toy "binaries" (the genome itself): compile and
   verify count their invocations so the memo behaviour is observable. *)
let counting_pool ?(jobs = 1) ?(cache = true) ?memo_budget ?key_of () =
  let compiles = ref 0 and verifies = ref 0 in
  let key = match key_of with Some k -> k | None -> Genome.to_string in
  let pool =
    Evalpool.create ~jobs ~cache ?memo_budget ~canon:Genome.to_string
      ~compile:(fun g -> incr compiles; Ok g)
      ~key_of:key
      ~verify:(fun g -> incr verifies; String.length (Genome.to_string g))
      ~finish:(fun ~ev_index core -> (ev_index, core))
      ()
  in
  (pool, compiles, verifies)

let gene p = { Genome.g_pass = p; g_params = [| 0 |] }
let ga = [ gene "alpha" ]
let gb = [ gene "beta"; gene "gamma" ]

let test_genome_memo_accounting () =
  let pool, compiles, verifies = counting_pool () in
  let out = Evalpool.evaluate_batch pool [| (1, ga); (2, ga); (3, gb) |] in
  Alcotest.(check int) "aligned ev_index 1" 1 (fst out.(0));
  Alcotest.(check bool) "duplicate genome, same core" true
    (snd out.(0) = snd out.(1));
  Alcotest.(check int) "two unique compiles" 2 !compiles;
  Alcotest.(check int) "two unique verifies" 2 !verifies;
  (* a later batch is served entirely from the memo *)
  let again = Evalpool.evaluate_batch pool [| (9, ga) |] in
  Alcotest.(check int) "cache hit keeps ev_index" 9 (fst again.(0));
  Alcotest.(check int) "no new compile" 2 !compiles;
  let s = Evalpool.stats pool in
  Alcotest.(check int) "tasks" 4 s.Evalpool.tasks;
  Alcotest.(check int) "batches" 2 s.Evalpool.batches;
  Alcotest.(check int) "genome hits" 2 s.Evalpool.genome_hits;
  Alcotest.(check int) "genome misses" 2 s.Evalpool.genome_misses

let test_key_memo_reuses_verification () =
  (* two distinct genomes compiling to the same binary key: both compile,
     only one verified replay runs (the identical-binaries case) *)
  let pool, compiles, verifies =
    counting_pool ~key_of:(fun _ -> "same-binary") ()
  in
  let out = Evalpool.evaluate_batch pool [| (1, ga); (2, gb) |] in
  Alcotest.(check int) "both compiled" 2 !compiles;
  Alcotest.(check int) "verified once" 1 !verifies;
  Alcotest.(check bool) "sibling gets the owner's core" true
    (snd out.(0) = snd out.(1));
  Alcotest.(check int) "key reuse counted" 1
    (Evalpool.stats pool).Evalpool.key_hits

let test_cache_disabled_is_honest () =
  let pool, compiles, verifies = counting_pool ~cache:false () in
  let out = Evalpool.evaluate_batch pool [| (1, ga); (2, ga); (3, gb) |] in
  Alcotest.(check int) "every task compiled" 3 !compiles;
  Alcotest.(check int) "every task verified" 3 !verifies;
  Alcotest.(check bool) "results still agree" true
    (snd out.(0) = snd out.(1));
  let s = Evalpool.stats pool in
  Alcotest.(check int) "no hits without cache" 0
    (s.Evalpool.genome_hits + s.Evalpool.key_hits)

(* --------------------- bounded (LRU) memo budget ---------------------- *)

let genome_of_int i = [ { Genome.g_pass = "p" ^ string_of_int i;
                          g_params = [| i |] } ]

let test_memo_budget_bounds_and_evicts () =
  let pool, compiles, _ = counting_pool ~memo_budget:2 () in
  (* three distinct genomes through a 2-entry budget: someone is evicted *)
  let batch =
    Array.init 3 (fun i -> (i + 1, genome_of_int i))
  in
  ignore (Evalpool.evaluate_batch pool batch);
  Alcotest.(check int) "three unique compiles" 3 !compiles;
  Alcotest.(check bool) "evictions happened" true
    ((Evalpool.stats pool).Evalpool.evictions > 0);
  (* the victim was the least-recently-used entry (genome 0): asking for
     it again recompiles, while the freshest entry is still memoized *)
  ignore (Evalpool.evaluate_batch pool [| (10, genome_of_int 2) |]);
  Alcotest.(check int) "fresh entry still cached" 3 !compiles;
  ignore (Evalpool.evaluate_batch pool [| (11, genome_of_int 0) |]);
  Alcotest.(check int) "evicted entry recompiles" 4 !compiles

(* Eviction must never change what the search *sees* — an LRU-bounded
   memo is a cache, not a semantics change.  A full FFT search under an
   absurdly small budget (constant evictions) must be byte-identical to
   the unbounded reference. *)
let test_memo_budget_digest_invariant () =
  let app = Option.get (App.find "FFT") in
  let cap = Option.get (Pipeline.capture_once ~seed:5 app) in
  let reference =
    fingerprint (Pipeline.optimize ~seed:3 ~cfg:tiny_cfg app cap)
  in
  let bounded =
    Pipeline.optimize ~seed:3 ~cfg:tiny_cfg ~memo_budget:4 app cap
  in
  Alcotest.(check bool) "tiny budget, identical search" true
    (fingerprint bounded = reference);
  Alcotest.(check bool) "and the budget really bit" true
    (bounded.Pipeline.pool_stats.Evalpool.evictions > 0)

let test_parallel_matches_sequential () =
  (* pure stages, so domains can run them without shared state *)
  let make jobs =
    Evalpool.create ~jobs ~cache:false ~canon:Genome.to_string
      ~compile:(fun g ->
          if List.length g mod 7 = 3 then Error (-1)
          else Ok g)
      ~key_of:Genome.to_string
      ~verify:(fun g -> Hashtbl.hash (Genome.to_string g))
      ~finish:(fun ~ev_index core -> (ev_index, core))
      ()
  in
  let rng = Repro_util.Rng.create 42 in
  let tasks =
    Array.init 40 (fun i -> (i + 1, Genome.random rng))
  in
  let seq = Evalpool.evaluate_batch (make 1) tasks in
  let par = Evalpool.evaluate_batch (make 4) tasks in
  Alcotest.(check bool) "4 domains, same outputs" true (seq = par);
  Alcotest.(check int) "aligned with input" 40 (fst seq.(39))

let test_worker_errors_propagate () =
  let pool =
    Evalpool.create ~jobs:2 ~cache:false ~canon:Genome.to_string
      ~compile:(fun _ -> failwith "compile stage exploded")
      ~key_of:Genome.to_string
      ~verify:(fun g -> String.length (Genome.to_string g))
      ~finish:(fun ~ev_index core -> (ev_index, core))
      ()
  in
  Alcotest.check_raises "stage failure surfaces"
    (Failure "compile stage exploded")
    (fun () -> ignore (Evalpool.evaluate_batch pool [| (1, ga); (2, gb) |]))

let () =
  Alcotest.run "evalpool"
    [ ("determinism",
       [ Alcotest.test_case "FFT seed 3" `Quick
           (test_search_determinism "FFT" 3);
         Alcotest.test_case "FFT seed 11" `Quick
           (test_search_determinism "FFT" 11);
         Alcotest.test_case "BubbleSort seed 7" `Quick
           (test_search_determinism "BubbleSort" 7) ]);
      ("engine",
       [ Alcotest.test_case "ref = fused across jobs/cache" `Quick
           test_engine_determinism;
         Alcotest.test_case "plan cache tracks binary memo" `Quick
           test_plan_cache_tracks_binary_memo ]);
      ("memoization",
       [ Alcotest.test_case "genome memo accounting" `Quick
           test_genome_memo_accounting;
         Alcotest.test_case "binary-key reuse" `Quick
           test_key_memo_reuses_verification;
         Alcotest.test_case "cache disabled" `Quick
           test_cache_disabled_is_honest;
         Alcotest.test_case "memo budget bounds and evicts" `Quick
           test_memo_budget_bounds_and_evicts;
         Alcotest.test_case "eviction never changes the search" `Quick
           test_memo_budget_digest_invariant ]);
      ("parallelism",
       [ Alcotest.test_case "parallel = sequential" `Quick
           test_parallel_matches_sequential;
         Alcotest.test_case "errors propagate" `Quick
           test_worker_errors_propagate ]) ]
