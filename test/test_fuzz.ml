(* Differential fuzzing: randomly generated MiniDex programs must behave
   identically under the interpreter, the Android pipeline, and random
   sequences of safe LLVM-style passes.  Programs are generated as ASTs
   (always well typed, no division by zero, in-bounds indices via masking)
   so every run exercises deep pipeline behaviour rather than parser
   rejections. *)

module Ast = Repro_dex.Ast
module B = Repro_dex.Bytecode
module Rng = Repro_util.Rng
module Vm = Repro_vm
module Hir = Repro_hgraph.Hir
module Binary = Repro_lir.Binary
module Capture = Repro_capture.Capture
module Verify = Repro_capture.Verify
open Ast

(* FUZZ_COUNT overrides the per-property case budget (CI smoke runs use a
   small value; the default matches the original suite). *)
let fuzz_count =
  match Option.bind (Sys.getenv_opt "FUZZ_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | Some _ | None -> 60

(* ------------------------- program generator ------------------------ *)

type genctx = {
  rng : Rng.t;
  mutable locals : string list;       (* int locals in scope *)
  mutable arrays : string list;       (* int[] locals in scope *)
  mutable fresh : int;
  mutable depth : int;
}

let fresh_name g prefix =
  g.fresh <- g.fresh + 1;
  Printf.sprintf "%s%d" prefix g.fresh

let rec gen_expr g d : expr =
  if d <= 0 || Rng.chance g.rng 0.3 then gen_leaf g
  else
    match Rng.int g.rng 8 with
    | 0 | 1 ->
      Ebinop (Rng.pick g.rng [| Add; Sub; Mul |], gen_expr g (d - 1),
              gen_expr g (d - 1))
    | 2 ->
      (* division with a guaranteed non-zero divisor *)
      Ebinop (Rng.pick g.rng [| Div; Rem |], gen_expr g (d - 1),
              Ebinop (Add, Ebinop (Band, gen_expr g (d - 1), Eint 7), Eint 1))
    | 3 ->
      Ebinop (Rng.pick g.rng [| Band; Bor; Bxor |], gen_expr g (d - 1),
              gen_expr g (d - 1))
    | 4 ->
      Ebinop (Shr, gen_expr g (d - 1), Ebinop (Band, gen_expr g (d - 1), Eint 15))
    | 5 when g.arrays <> [] ->
      (* in-bounds read: a[((e % len) + len) % len] with len > 0 *)
      let a = Rng.pick_list g.rng g.arrays in
      let e = gen_expr g (d - 1) in
      let len = Elen (Evar a) in
      Eindex (Evar a,
              Ebinop (Rem, Ebinop (Add, Ebinop (Rem, e, len), len), len))
    | 6 -> Eunop (Neg, gen_expr g (d - 1))
    | _ -> gen_leaf g

and gen_leaf g =
  if g.locals <> [] && Rng.chance g.rng 0.7 then
    Evar (Rng.pick_list g.rng g.locals)
  else Eint (Rng.int_in g.rng (-50) 50)

let rec gen_stmt g : stmt =
  match Rng.int g.rng 10 with
  | 0 | 1 ->
    let name = fresh_name g "v" in
    let s = Sdecl (Tint, name, Some (gen_expr g 3)) in
    g.locals <- name :: g.locals;
    s
  | 2 | 3 when g.locals <> [] ->
    Sassign (Lvar (Rng.pick_list g.rng g.locals), gen_expr g 3)
  | 4 | 5 ->
    let cond =
      Ebinop (Rng.pick g.rng [| Lt; Le; Gt; Ge; Eq; Ne |], gen_expr g 2,
              gen_expr g 2)
    in
    g.depth <- g.depth + 1;
    let scoped gen =
      let saved_l = g.locals and saved_a = g.arrays in
      let b = gen () in
      g.locals <- saved_l;
      g.arrays <- saved_a;
      b
    in
    let result =
      if g.depth > 3 then Sif (cond, scoped (fun () -> [ gen_stmt g ]), [])
      else
        Sif (cond, scoped (fun () -> gen_block g 2),
             scoped (fun () -> gen_block g 2))
    in
    g.depth <- g.depth - 1;
    result
  | 6 when g.depth < 2 ->
    (* bounded counted loop *)
    let i = fresh_name g "i" in
    let n = Rng.int_in g.rng 1 12 in
    g.depth <- g.depth + 1;
    let saved_l = g.locals and saved_a = g.arrays in
    g.locals <- i :: g.locals;
    let body = gen_block g 3 in
    g.depth <- g.depth - 1;
    g.locals <- saved_l;
    g.arrays <- saved_a;
    Sfor (Some (Sdecl (Tint, i, Some (Eint 0))),
          Ebinop (Lt, Evar i, Eint n),
          Some (Sassign (Lvar i, Ebinop (Add, Evar i, Eint 1))),
          body)
  | 7 when g.arrays <> [] && g.locals <> [] ->
    (* in-bounds array write *)
    let a = Rng.pick_list g.rng g.arrays in
    let e = gen_expr g 2 in
    let len = Elen (Evar a) in
    Sassign
      (Lindex (Evar a,
               Ebinop (Rem, Ebinop (Add, Ebinop (Rem, e, len), len), len)),
       gen_expr g 3)
  | 8 ->
    let name = fresh_name g "a" in
    let s = Sdecl (Tarray Tint, name,
                   Some (Enew_array (Tint, Eint (Rng.int_in g.rng 1 24)))) in
    g.arrays <- name :: g.arrays;
    s
  | _ when g.locals <> [] ->
    Sassign (Lvar (Rng.pick_list g.rng g.locals), gen_expr g 4)
  | _ -> Sdecl (Tint, fresh_name g "w", Some (Eint 1))

and gen_block g n = List.init n (fun _ -> gen_stmt g)

let gen_program seed : Ast.program =
  let g = { rng = Rng.create seed; locals = []; arrays = []; fresh = 0;
            depth = 0 } in
  let body = gen_block g (Rng.int_in g.rng 6 14) in
  (* fold every live value into the result so computations stay observable *)
  let acc_var = "acc" in
  let sum =
    List.fold_left
      (fun e v -> Ebinop (Bxor, e, Evar v))
      (Eint 0) g.locals
  in
  let array_sums =
    List.map
      (fun a ->
         let i = "ri_" ^ a in
         Sfor (Some (Sdecl (Tint, i, Some (Eint 0))),
               Ebinop (Lt, Evar i, Elen (Evar a)),
               Some (Sassign (Lvar i, Ebinop (Add, Evar i, Eint 1))),
               [ Sassign (Lvar acc_var,
                          Ebinop (Add, Evar acc_var,
                                  Eindex (Evar a, Evar i))) ]))
      g.arrays
  in
  let main =
    { m_name = "main"; m_static = true; m_ret = Tint; m_params = [];
      m_body =
        body
        @ [ Sdecl (Tint, acc_var, Some sum) ]
        @ array_sums
        @ [ Sreturn (Some (Evar acc_var)) ] }
  in
  [ { c_name = "Main"; c_super = None; c_fields = []; c_methods = [ main ] } ]

let compile_ast prog = Repro_dex.Lower.lower (Repro_dex.Typecheck.check prog)

(* ------------------------------ oracle ------------------------------ *)

type result = Ret of Vm.Value.t option | Exc of int | Fuel

let run_with dx install =
  let ctx = Vm.Image.build ~seed:1 ~fuel:50_000_000 dx in
  install ctx;
  match Vm.Interp.run_main ctx with
  | r -> Ret r
  | exception Vm.Exec_ctx.App_exception c -> Exc c
  | exception Vm.Exec_ctx.Timeout -> Fuel

let result_eq a b =
  match a, b with
  | Ret (Some x), Ret (Some y) -> Vm.Value.equal x y
  | Ret None, Ret None -> true
  | Exc x, Exc y -> x = y
  | Fuel, Fuel -> true
  | _ -> false

let show = function
  | Ret (Some v) -> Vm.Value.to_string v
  | Ret None -> "()"
  | Exc c -> Printf.sprintf "exc %d" c
  | Fuel -> "fuel"

let all_mids dx = Array.to_list (Array.map (fun m -> m.B.cm_id) dx.B.dx_methods)

let prop_android_matches_interp =
  QCheck.Test.make ~name:"fuzz: android pipeline preserves semantics"
    ~count:fuzz_count
    QCheck.(int_bound 1_000_000)
    (fun seed ->
       let dx = compile_ast (gen_program seed) in
       let ri = run_with dx Vm.Interp.install in
       let rb =
         run_with dx (fun ctx ->
             Repro_lir.Exec.install ctx
               (Repro_lir.Compile.android_binary dx (all_mids dx)))
       in
       if result_eq ri rb then true
       else
         QCheck.Test.fail_reportf "seed %d: interp=%s android=%s" seed
           (show ri) (show rb))

let prop_o3_matches_interp =
  QCheck.Test.make ~name:"fuzz: -O3 preserves semantics" ~count:fuzz_count
    QCheck.(int_bound 1_000_000)
    (fun seed ->
       let dx = compile_ast (gen_program seed) in
       let ri = run_with dx Vm.Interp.install in
       let rb =
         run_with dx (fun ctx ->
             Repro_lir.Exec.install ctx
               (Repro_lir.Compile.llvm_binary dx Repro_lir.Pipelines.o3
                  (all_mids dx)))
       in
       if result_eq ri rb then true
       else
         QCheck.Test.fail_reportf "seed %d: interp=%s o3=%s" seed (show ri)
           (show rb))

let prop_random_safe_passes_match =
  QCheck.Test.make ~name:"fuzz: random safe sequences preserve semantics"
    ~count:fuzz_count
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (seed, pass_seed) ->
       let dx = compile_ast (gen_program seed) in
       let ri = run_with dx Vm.Interp.install in
       let rng = Rng.create pass_seed in
       let safe =
         List.filter (fun p -> p.Repro_lir.Passes.safe) Repro_lir.Passes.catalog
       in
       let spec =
         List.init (Rng.int_in rng 1 10) (fun _ ->
             let pass = Rng.pick_list rng safe in
             let params =
               Array.of_list
                 (List.map
                    (fun pr ->
                       Rng.int_in rng pr.Repro_lir.Passes.pmin
                         pr.Repro_lir.Passes.pmax)
                    pass.Repro_lir.Passes.params)
             in
             (pass.Repro_lir.Passes.name, params))
       in
       match Repro_lir.Compile.llvm_binary dx spec (all_mids dx) with
       | exception Repro_lir.Compile.Compile_timeout -> true
       | binary ->
         let rb = run_with dx (fun ctx -> Repro_lir.Exec.install ctx binary) in
         if result_eq ri rb then true
         else
           QCheck.Test.fail_reportf "seed %d passes=%s: interp=%s opt=%s" seed
             (String.concat "," (List.map fst spec))
             (show ri) (show rb))

(* --------------- capture -> replay -> verify differential ----------- *)

(* Run the generated program under the interpreter, capturing the single
   execution of [Main.main] as the "hot region" (the whole program is the
   region — generated mains take no arguments and call nothing). *)
let capture_main dx mid =
  let ctx = Vm.Image.build ~seed:1 ~fuel:50_000_000 dx in
  Vm.Interp.install ctx;
  let base = ctx.Vm.Exec_ctx.dispatch in
  let captured = ref None in
  Vm.Exec_ctx.set_dispatch ctx (fun ctx' m args ->
      if m = mid && !captured = None then begin
        let r =
          Capture.capture_region ~app:"fuzz" ctx' ~mid ~args
            ~run:(fun () -> base ctx' m args)
        in
        captured := Some r;
        r.Capture.region_ret
      end
      else base ctx' m args);
  (try ignore (Vm.Interp.run_main ctx) with
   | Vm.Exec_ctx.App_exception _ | Vm.Exec_ctx.Timeout -> ());
  Option.map (fun r -> r.Capture.snapshot) !captured

(* A deliberate miscompile: every `return r` in the region's root method
   becomes `return r + 1`.  The verifier must flag the changed behaviour. *)
let perturb_func f =
  let f = Hir.copy f in
  let touched = ref false in
  Hashtbl.iter
    (fun _ blk ->
       match blk.Hir.term with
       | Hir.Ret (Some r) ->
         let one = Hir.fresh_reg f in
         let sum = Hir.fresh_reg f in
         blk.Hir.insns <-
           blk.Hir.insns
           @ [ Hir.Const (one, B.Cint 1); Hir.Binop (Ast.Add, sum, r, one) ];
         blk.Hir.term <- Hir.Ret (Some sum);
         touched := true
       | _ -> ())
    f.Hir.f_blocks;
  if not !touched then None else Some f

let perturb_binary binary mid =
  match Option.bind (Binary.find binary mid) perturb_func with
  | None -> None
  | Some bad ->
    let funcs =
      List.map
        (fun m -> if m = mid then bad else Option.get (Binary.find binary m))
        (Binary.mids binary)
    in
    Some (Binary.create funcs)

let prop_capture_verify_differential =
  QCheck.Test.make
    ~name:"fuzz: verify accepts faithful binaries, rejects perturbed ones"
    ~count:fuzz_count
    QCheck.(int_bound 1_000_000)
    (fun seed ->
       let dx = compile_ast (gen_program seed) in
       let mid = (Option.get (B.find_method dx "Main" "main")).B.cm_id in
       match capture_main dx mid with
       | None -> true   (* program died before the region ran: nothing to check *)
       | Some snap ->
         let vmap = Verify.collect dx snap in
         let binary = Repro_lir.Compile.android_binary dx (all_mids dx) in
         (match Verify.check dx snap vmap binary with
          | Verify.Passed _ -> ()
          | Verify.Wrong_output | Verify.Crashed _ | Verify.Hung ->
            QCheck.Test.fail_reportf
              "seed %d: faithful android binary rejected by verifier" seed);
         (match perturb_binary binary mid with
          | None -> true   (* region never returns a value: cannot perturb *)
          | Some bad ->
            (match Verify.check dx snap vmap bad with
             | Verify.Wrong_output -> true
             | Verify.Passed _ ->
               QCheck.Test.fail_reportf
                 "seed %d: perturbed binary (ret+1) passed verification" seed
             | Verify.Crashed msg ->
               QCheck.Test.fail_reportf
                 "seed %d: perturbed binary crashed the replay: %s" seed msg
             | Verify.Hung ->
               QCheck.Test.fail_reportf
                 "seed %d: perturbed binary hung the replay" seed)))

(* --------------- block-fused engine differential -------------------- *)

module Replay = Repro_capture.Replay
module Blockexec = Repro_lir.Blockexec
module Exec = Repro_lir.Exec

(* Replay under one engine while recording the block-entry stream both
   engines publish through [Exec.block_hook]. *)
let replay_streamed engine dx snap binary =
  let stream = ref [] in
  Exec.block_hook :=
    Some (fun mid bid cyc -> stream := (mid, bid, cyc) :: !stream);
  let r =
    Fun.protect
      ~finally:(fun () -> Exec.block_hook := None)
      (fun () -> Replay.run ~engine dx snap (Replay.Optimized binary))
  in
  (r, List.rev !stream)

let show_outcome = function
  | Replay.Finished (v, cyc) ->
    Printf.sprintf "finished(%s, %d)"
      (match v with Some v -> Vm.Value.to_string v | None -> "()")
      cyc
  | Replay.Crashed msg -> "crashed(" ^ msg ^ ")"
  | Replay.Hung -> "hung"

(* First (mid, bid, cycles) where the lockstep streams part ways, with the
   offending block's code — the shrunk counterexample a divergence report
   should lead with. *)
let divergent_block binary ref_s fused_s =
  let dump (mid, bid, cyc) =
    match Binary.find binary mid with
    | None -> Printf.sprintf "m%d:b%d@%d (not in binary)" mid bid cyc
    | Some f ->
      (match Hashtbl.find_opt f.Hir.f_blocks bid with
       | None -> Printf.sprintf "m%d:b%d@%d (no such block)" mid bid cyc
       | Some b ->
         Printf.sprintf "m%d:b%d@%d\n  %s\n  %s" mid bid cyc
           (String.concat "\n  " (List.map Hir.string_of_instr b.Hir.insns))
           (Hir.string_of_term b.Hir.term))
  in
  let rec go i ra rb =
    match ra, rb with
    | [], [] -> "streams identical"
    | a :: _, [] -> Printf.sprintf "step %d: fused stream ended; ref %s" i (dump a)
    | [], b :: _ -> Printf.sprintf "step %d: ref stream ended; fused %s" i (dump b)
    | a :: ra, b :: rb ->
      if a = b then go (i + 1) ra rb
      else
        Printf.sprintf "step %d:\nref   %s\nfused %s" i (dump a) (dump b)
  in
  go 0 ref_s fused_s

(* Random (program, pass sequence) pairs — drawn from the FULL pass
   catalog, unsafe passes included, so guard-stripped and otherwise
   crashing binaries are routinely exercised: the captured replay must
   agree between the reference and block-fused engines on result, cycle
   count, dirty heap/static words, and the verification verdict. *)
let prop_engines_agree =
  QCheck.Test.make
    ~name:"fuzz: block-fused engine bit-identical to reference"
    ~count:fuzz_count
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (seed, pass_seed) ->
       let dx = compile_ast (gen_program seed) in
       let mid = (Option.get (B.find_method dx "Main" "main")).B.cm_id in
       match capture_main dx mid with
       | None -> true
       | Some snap ->
         let rng = Rng.create pass_seed in
         let spec =
           List.init (Rng.int_in rng 1 10) (fun _ ->
               let pass = Rng.pick_list rng Repro_lir.Passes.catalog in
               let params =
                 Array.of_list
                   (List.map
                      (fun pr ->
                         Rng.int_in rng pr.Repro_lir.Passes.pmin
                           pr.Repro_lir.Passes.pmax)
                      pass.Repro_lir.Passes.params)
               in
               (pass.Repro_lir.Passes.name, params))
         in
         (match Repro_lir.Compile.llvm_binary dx spec (all_mids dx) with
          | exception Repro_lir.Compile.Compile_timeout -> true
          | exception Repro_lir.Compile.Compile_error _ -> true
          | binary ->
            let rr, sr = replay_streamed Blockexec.Ref dx snap binary in
            let rf, sf = replay_streamed Blockexec.Fused dx snap binary in
            let fail what =
              QCheck.Test.fail_reportf
                "seed %d passes=%s: %s\nref:   %s\nfused: %s\n%s" seed
                (String.concat "," (List.map fst spec))
                what
                (show_outcome rr.Replay.outcome)
                (show_outcome rf.Replay.outcome)
                (divergent_block binary sr sf)
            in
            let outcome_eq =
              match rr.Replay.outcome, rf.Replay.outcome with
              | Replay.Finished (va, ca), Replay.Finished (vb, cb) ->
                ca = cb
                && (match va, vb with
                    | None, None -> true
                    | Some x, Some y -> Vm.Value.equal x y
                    | _ -> false)
              | Replay.Crashed a, Replay.Crashed b -> String.equal a b
              | Replay.Hung, Replay.Hung -> true
              | _ -> false
            in
            if not outcome_eq then fail "outcomes differ"
            else if
              rr.Replay.ctx.Vm.Exec_ctx.cycles
              <> rf.Replay.ctx.Vm.Exec_ctx.cycles
            then fail "post-replay cycles differ"
            else if
              Verify.diff_against_snapshot rr.Replay.ctx snap
              <> Verify.diff_against_snapshot rf.Replay.ctx snap
            then fail "dirty heap/static words differ"
            else begin
              (* the verdict the pipeline acts on must also agree *)
              let vmap = Verify.collect dx snap in
              let verdict engine =
                let prev = Blockexec.default_engine () in
                Blockexec.set_default_engine engine;
                Fun.protect
                  ~finally:(fun () -> Blockexec.set_default_engine prev)
                  (fun () -> Verify.check dx snap vmap binary)
              in
              let vr = verdict Blockexec.Ref
              and vf = verdict Blockexec.Fused in
              let same =
                match vr, vf with
                | Verify.Passed a, Verify.Passed b -> a = b
                | Verify.Wrong_output, Verify.Wrong_output -> true
                | Verify.Crashed a, Verify.Crashed b -> String.equal a b
                | Verify.Hung, Verify.Hung -> true
                | _ -> false
              in
              if not same then fail "verification verdicts differ" else true
            end))

let () =
  Alcotest.run "fuzz"
    [ ("differential",
       List.map QCheck_alcotest.to_alcotest
         [ prop_android_matches_interp; prop_o3_matches_interp;
           prop_random_safe_passes_match; prop_engines_agree ]);
      ("capture-verify",
       List.map QCheck_alcotest.to_alcotest
         [ prop_capture_verify_differential ]) ]
