(* Tests for crash-safe checkpoint/resume: a search killed after any
   number of live batches and resumed from its journal must produce a
   search digest byte-identical to an uninterrupted run — at every
   -j/--no-cache combination, including resuming under a different one
   than the interrupted part ran with.  Damaged, truncated or mismatched
   checkpoints must degrade to a warned cold start routed through the
   quarantine policy, never to a wrong result. *)

module Pipeline = Repro_core.Pipeline
module Checkpoint = Repro_core.Checkpoint
module Ga = Repro_search.Ga
module App = Repro_apps.Registry

let tiny_cfg =
  { Ga.quick_config with population = 8; generations = 4; max_identical = 30 }

let fft () = Option.get (App.find "FFT")

let capture = lazy (Option.get (Pipeline.capture_once ~seed:5 (fft ())))

(* a fresh path with no file behind it: resuming from it is `Absent,
   not `Damaged *)
let temp_ckpt () =
  let f = Filename.temp_file "repro_ckpt" ".bin" in
  Sys.remove f;
  f

let rm file = if Sys.file_exists file then Sys.remove file

(* An uninterrupted run's digest: the reference every scenario must hit. *)
let reference = lazy (
  Pipeline.search_digest
    (Pipeline.optimize ~seed:3 ~cfg:tiny_cfg (fft ()) (Lazy.force capture)))

let run_with_ckpt ?jobs ?cache ?abort_after file =
  let q = Pipeline.create_quarantine_log () in
  match
    Pipeline.optimize ~seed:3 ~cfg:tiny_cfg ?jobs ?cache ~quarantine:q
      ~checkpoint:file ?abort_after (fft ()) (Lazy.force capture)
  with
  | opt -> Some (Pipeline.search_digest opt)
  | exception Checkpoint.Injected_abort -> None

(* ------------------------- kill/resume property ----------------------- *)

let test_kill_resume ~kill_at ~jobs1 ~cache1 ~jobs2 ~cache2 () =
  let file = temp_ckpt () in
  Fun.protect ~finally:(fun () -> rm file) @@ fun () ->
  (* first process: killed right after the [kill_at]-th live batch *)
  Alcotest.(check (option string)) "interrupted run dies" None
    (run_with_ckpt ~jobs:jobs1 ~cache:cache1 ~abort_after:kill_at file);
  Alcotest.(check bool) "checkpoint file exists" true (Sys.file_exists file);
  (* second process: resumes the journal and finishes *)
  match run_with_ckpt ~jobs:jobs2 ~cache:cache2 file with
  | None -> Alcotest.fail "resumed run aborted unexpectedly"
  | Some digest ->
    Alcotest.(check string) "resume digest = uninterrupted digest"
      (Lazy.force reference) digest

(* Crash after *every* batch: each process contributes exactly one live
   batch; the search still converges to the reference digest. *)
let test_crash_every_batch () =
  let file = temp_ckpt () in
  Fun.protect ~finally:(fun () -> rm file) @@ fun () ->
  let rec go guard =
    if guard = 0 then Alcotest.fail "search never finished"
    else
      match run_with_ckpt ~abort_after:1 file with
      | Some digest ->
        Alcotest.(check string) "digest after crash-every-batch"
          (Lazy.force reference) digest
      | None -> go (guard - 1)
  in
  go 200

(* The resumed process must do strictly less live work than a cold run —
   the resume-overhead claim, structurally. *)
let test_resume_replays_cheaply () =
  let file = temp_ckpt () in
  Fun.protect ~finally:(fun () -> rm file) @@ fun () ->
  ignore (run_with_ckpt ~abort_after:3 file);
  let s =
    Pipeline.start_search ~seed:3 ~cfg:tiny_cfg
      ~quarantine:(Pipeline.create_quarantine_log ())
      ~checkpoint:file (fft ()) (Lazy.force capture)
  in
  let rec drive () =
    match Pipeline.search_step s with
    | `Finished r -> r
    | `Live | `Replayed -> drive ()
  in
  let r = drive () in
  Alcotest.(check string) "stepped resume digest"
    (Lazy.force reference) (Pipeline.search_digest r);
  Alcotest.(check int) "replayed exactly the recorded batches" 3
    (Pipeline.session_replayed_batches s);
  Alcotest.(check bool) "no warnings on a clean resume" true
    (Pipeline.session_warnings s = [])

(* ------------------------ byte-determinism of files ------------------- *)

let read_file file = In_channel.with_open_bin file In_channel.input_all

let test_checkpoint_bytes_deterministic () =
  let f1 = temp_ckpt () and f2 = temp_ckpt () in
  Fun.protect ~finally:(fun () -> rm f1; rm f2) @@ fun () ->
  ignore (run_with_ckpt ~jobs:1 ~cache:true ~abort_after:2 f1);
  ignore (run_with_ckpt ~jobs:4 ~cache:false ~abort_after:2 f2);
  Alcotest.(check string)
    "same journal bytes from -j1 cached and -j4 uncached"
    (read_file f1) (read_file f2)

(* -------------------------- damage handling --------------------------- *)

let quarantine_keys q =
  List.map (fun e -> e.Pipeline.q_binary) (Pipeline.quarantine_summary ~log:q ())

let start_with ~quarantine file =
  Pipeline.start_search ~seed:3 ~cfg:tiny_cfg ~quarantine ~checkpoint:file
    (fft ()) (Lazy.force capture)

let drive_session s =
  let rec go () =
    match Pipeline.search_step s with
    | `Finished r -> r
    | `Live | `Replayed -> go ()
  in
  go ()

let check_cold_start ~name file =
  let q = Pipeline.create_quarantine_log () in
  let s = start_with ~quarantine:q file in
  Alcotest.(check bool) (name ^ ": warned") true
    (Pipeline.session_warnings s <> []);
  Alcotest.(check (list string)) (name ^ ": quarantined")
    [ "checkpoint:" ^ file ] (quarantine_keys q);
  let r = drive_session s in
  Alcotest.(check int) (name ^ ": nothing replayed") 0
    (Pipeline.session_replayed_batches s);
  Alcotest.(check string) (name ^ ": cold digest still right")
    (Lazy.force reference) (Pipeline.search_digest r)

let test_garbage_checkpoint () =
  let file = temp_ckpt () in
  Fun.protect ~finally:(fun () -> rm file) @@ fun () ->
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_string oc "not a checkpoint at all\n");
  check_cold_start ~name:"garbage" file

let test_truncated_checkpoint () =
  let file = temp_ckpt () in
  Fun.protect ~finally:(fun () -> rm file) @@ fun () ->
  ignore (run_with_ckpt ~abort_after:2 file);
  let bytes = read_file file in
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_string oc
        (String.sub bytes 0 (String.length bytes / 2)));
  check_cold_start ~name:"truncated" file

let test_corrupt_checkpoint () =
  let file = temp_ckpt () in
  Fun.protect ~finally:(fun () -> rm file) @@ fun () ->
  ignore (run_with_ckpt ~abort_after:2 file);
  let bytes = Bytes.of_string (read_file file) in
  let mid = Bytes.length bytes / 2 in
  Bytes.set bytes mid (Char.chr (Char.code (Bytes.get bytes mid) lxor 0x41));
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_bytes oc bytes);
  check_cold_start ~name:"corrupt" file

(* A journal from a different run configuration must be refused by the
   fingerprint check, not replayed into a wrong search. *)
let test_fingerprint_mismatch () =
  let file = temp_ckpt () in
  Fun.protect ~finally:(fun () -> rm file) @@ fun () ->
  let q = Pipeline.create_quarantine_log () in
  (match
     Pipeline.optimize ~seed:4 ~cfg:tiny_cfg ~quarantine:q ~checkpoint:file
       ~abort_after:2 (fft ()) (Lazy.force capture)
   with
   | _ -> Alcotest.fail "seed-4 run should have aborted"
   | exception Checkpoint.Injected_abort -> ());
  (* now resume it under seed 3: configuration mismatch, cold start *)
  check_cold_start ~name:"mismatch" file

(* ----------------------- quarantine log scoping ----------------------- *)

let test_quarantine_scoping () =
  let a = Pipeline.create_quarantine_log () in
  let b = Pipeline.create_quarantine_log () in
  Pipeline.record_quarantine ~log:a ~key:"k1" ~reason:"r1" ();
  Pipeline.record_quarantine ~log:a ~key:"k1" ~reason:"r1" ();
  Pipeline.record_quarantine ~log:b ~key:"k2" ~reason:"r2" ();
  Alcotest.(check (list string)) "log a sees only its keys" [ "k1" ]
    (quarantine_keys a);
  Alcotest.(check (list string)) "log b sees only its keys" [ "k2" ]
    (quarantine_keys b);
  (match Pipeline.quarantine_summary ~log:a () with
   | [ e ] -> Alcotest.(check int) "counts accumulate" 2 e.Pipeline.q_count
   | _ -> Alcotest.fail "expected one entry");
  (* resetting one tenant must not clobber another (the old process-global
     reset bug) *)
  Pipeline.reset_quarantine ~log:a ();
  Alcotest.(check (list string)) "a reset" [] (quarantine_keys a);
  Alcotest.(check (list string)) "b survives a's reset" [ "k2" ]
    (quarantine_keys b);
  (* round-trip through the checkpoint representation *)
  let c = Pipeline.create_quarantine_log () in
  Pipeline.restore_quarantine c (Pipeline.quarantine_entries b);
  Alcotest.(check bool) "entries round-trip" true
    (Pipeline.quarantine_entries c = Pipeline.quarantine_entries b)

(* -------------------------- codec round-trip -------------------------- *)

let test_checkpoint_codec () =
  let t =
    { Checkpoint.fingerprint = "fp with\ttabs and\nnewlines";
      batches =
        [ { Checkpoint.b_cursor = 0x1234_5678_9abc_def0L;
            b_tasks =
              [ { Checkpoint.t_ev_index = 1; t_canon = "a b:1,2";
                  t_core =
                    Checkpoint.C_measured
                      { cycles = 123; size = 45; key = "\x00\xffbin" } };
                { Checkpoint.t_ev_index = 2; t_canon = "c";
                  t_core = Checkpoint.C_compile_failed "msg\twith tab" };
                { Checkpoint.t_ev_index = 3; t_canon = "d";
                  t_core = Checkpoint.C_hung } ] };
          { Checkpoint.b_cursor = Int64.minus_one; b_tasks = [] } ];
      quarantine = [ ("key", "reason with spaces", 3) ] }
  in
  let file = temp_ckpt () in
  Fun.protect ~finally:(fun () -> rm file) @@ fun () ->
  Checkpoint.save t file;
  (match Checkpoint.load file with
   | `Loaded (t', warnings) ->
     Alcotest.(check bool) "no warnings" true (warnings = []);
     Alcotest.(check bool) "value round-trips" true (t = t')
   | `Absent | `Damaged _ -> Alcotest.fail "expected a clean load");
  Alcotest.(check bool) "absent file reported" true
    (Checkpoint.load (file ^ ".nope") = `Absent)

let () =
  Alcotest.run "checkpoint"
    [ ("kill-resume",
       [ Alcotest.test_case "kill@1 j1->j1" `Quick
           (test_kill_resume ~kill_at:1 ~jobs1:1 ~cache1:true ~jobs2:1
              ~cache2:true);
         Alcotest.test_case "kill@2 j4->j1" `Quick
           (test_kill_resume ~kill_at:2 ~jobs1:4 ~cache1:true ~jobs2:1
              ~cache2:true);
         Alcotest.test_case "kill@2 j1->j4 no-cache" `Quick
           (test_kill_resume ~kill_at:2 ~jobs1:1 ~cache1:true ~jobs2:4
              ~cache2:false);
         Alcotest.test_case "kill@3 no-cache->cached" `Quick
           (test_kill_resume ~kill_at:3 ~jobs1:1 ~cache1:false ~jobs2:1
              ~cache2:true);
         Alcotest.test_case "crash after every batch" `Quick
           test_crash_every_batch;
         Alcotest.test_case "resume replays, not re-evaluates" `Quick
           test_resume_replays_cheaply ]);
      ("format",
       [ Alcotest.test_case "journal bytes deterministic" `Quick
           test_checkpoint_bytes_deterministic;
         Alcotest.test_case "codec round-trip" `Quick test_checkpoint_codec ]);
      ("damage",
       [ Alcotest.test_case "garbage file" `Quick test_garbage_checkpoint;
         Alcotest.test_case "truncated file" `Quick test_truncated_checkpoint;
         Alcotest.test_case "corrupted byte" `Quick test_corrupt_checkpoint;
         Alcotest.test_case "config mismatch" `Quick
           test_fingerprint_mismatch ]);
      ("quarantine",
       [ Alcotest.test_case "per-run scoping" `Quick
           test_quarantine_scoping ]) ]
