(* Tests for the OS substrate: paged memory, protection, fork/CoW chains,
   page install, mappings, storage. *)

module Mem = Repro_os.Mem
module Storage = Repro_os.Storage

let fresh ?(npages = 8) () =
  let mem = Mem.create () in
  Mem.map mem ~base:0x1000_0000 ~npages ~kind:Mem.Rheap ~name:"heap";
  mem

let addr i = 0x1000_0000 + (i * 8)

(* ------------------------------- basics ----------------------------- *)

let test_zero_fill () =
  let mem = fresh () in
  Alcotest.(check int) "untouched reads zero" 0 (Mem.read_int mem (addr 5))

let test_word_roundtrip () =
  let mem = fresh () in
  Mem.write_word mem (addr 0) 0x0123_4567_89AB_CDEFL;
  Alcotest.(check bool) "word" true
    (Mem.read_word mem (addr 0) = 0x0123_4567_89AB_CDEFL);
  Mem.write_float mem (addr 1) 2.718281828;
  Alcotest.(check (float 1e-12)) "float" 2.718281828 (Mem.read_float mem (addr 1));
  Mem.write_int mem (addr 2) (-42);
  Alcotest.(check int) "negative int" (-42) (Mem.read_int mem (addr 2))

let test_mapping_rules () =
  let mem = fresh () in
  (try
     Mem.map mem ~base:0x1000_0000 ~npages:1 ~kind:Mem.Rcode ~name:"overlap";
     Alcotest.fail "expected overlap rejection"
   with Invalid_argument _ -> ());
  (try
     Mem.map mem ~base:0x2000_0001 ~npages:1 ~kind:Mem.Rcode ~name:"unaligned";
     Alcotest.fail "expected alignment rejection"
   with Invalid_argument _ -> ());
  Mem.map mem ~base:0x2000_0000 ~npages:2 ~kind:Mem.Rcode ~name:"lib.so";
  Alcotest.(check int) "two mappings" 2 (List.length (Mem.mappings mem));
  Alcotest.(check bool) "ascending" true
    (match Mem.mappings mem with
     | [ a; b ] -> a.Mem.map_base < b.Mem.map_base
     | _ -> false)

let test_kind_of_page () =
  let mem = fresh () in
  Alcotest.(check bool) "heap kind" true
    (Mem.kind_of_page mem (0x1000_0000 / Mem.page_size) = Some Mem.Rheap);
  Alcotest.(check bool) "unmapped" true
    (Mem.kind_of_page mem 0 = None)

(* ----------------------------- protection --------------------------- *)

let test_protection_lifecycle () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 7;
  let page = 0x1000_0000 / Mem.page_size in
  Mem.protect mem ~page;
  Alcotest.(check bool) "protected" true (Mem.protected mem ~page);
  (* access clears protection even with no handler *)
  Alcotest.(check int) "read proceeds" 7 (Mem.read_int mem (addr 0));
  Alcotest.(check bool) "unprotected after fault" false (Mem.protected mem ~page)

let test_write_faults_too () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 1;
  let page = 0x1000_0000 / Mem.page_size in
  let faults = ref 0 in
  Mem.set_fault_handler mem (Some (fun _ -> incr faults));
  Mem.protect mem ~page;
  Mem.write_int mem (addr 1) 2;
  Alcotest.(check int) "write faulted" 1 !faults;
  Mem.write_int mem (addr 2) 3;
  Alcotest.(check int) "second write silent" 1 !faults

let test_protect_untouched_noop () =
  let mem = fresh () in
  Mem.protect mem ~page:(0x1000_0000 / Mem.page_size);
  Alcotest.(check bool) "not materialized, not protected" false
    (Mem.protected mem ~page:(0x1000_0000 / Mem.page_size))

(* ------------------------------ fork/CoW ---------------------------- *)

let test_fork_shares_until_write () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 10;
  let child = Mem.fork mem in
  Alcotest.(check int) "child reads parent data" 10 (Mem.read_int child (addr 0));
  Alcotest.(check int) "no CoW yet" 0 (Mem.stats mem).Mem.n_cow;
  Mem.write_int mem (addr 0) 20;
  Alcotest.(check int) "one CoW" 1 (Mem.stats mem).Mem.n_cow;
  Alcotest.(check int) "child keeps original" 10 (Mem.read_int child (addr 0));
  Mem.write_int mem (addr 0) 30;
  Alcotest.(check int) "second write no CoW" 1 (Mem.stats mem).Mem.n_cow

let test_child_write_cow () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 10;
  let child = Mem.fork mem in
  Mem.write_int child (addr 0) 99;
  Alcotest.(check int) "parent unaffected" 10 (Mem.read_int mem (addr 0));
  Alcotest.(check int) "child sees its write" 99 (Mem.read_int child (addr 0))

let test_fork_chain () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 1;
  let c1 = Mem.fork mem in
  let c2 = Mem.fork mem in
  Mem.write_int mem (addr 0) 2;
  Alcotest.(check int) "c1 original" 1 (Mem.read_int c1 (addr 0));
  Alcotest.(check int) "c2 original" 1 (Mem.read_int c2 (addr 0));
  Mem.write_int c1 (addr 0) 3;
  Alcotest.(check int) "c2 still original" 1 (Mem.read_int c2 (addr 0))

let test_fork_after_protection () =
  (* the capture ordering: fork first, then protect the parent; child
     accesses must not fault *)
  let mem = fresh () in
  Mem.write_int mem (addr 0) 5;
  let child = Mem.fork mem in
  let page = 0x1000_0000 / Mem.page_size in
  Mem.protect mem ~page;
  Alcotest.(check bool) "child unprotected" false (Mem.protected child ~page);
  Alcotest.(check int) "child reads freely" 5 (Mem.read_int child (addr 0))

(* ---------------------------- install_page -------------------------- *)

let test_install_page () =
  let mem = fresh () in
  let data = Array.make Mem.words_per_page 0L in
  data.(3) <- 77L;
  Mem.install_page mem ~page:(0x1000_0000 / Mem.page_size) data;
  Alcotest.(check int) "installed word" 77 (Mem.read_int mem (addr 3));
  data.(3) <- 0L;
  Alcotest.(check int) "copied, not aliased" 77 (Mem.read_int mem (addr 3));
  (try
     Mem.install_page mem ~page:0 data;
     Alcotest.fail "expected unmapped rejection"
   with Invalid_argument _ -> ());
  (try
     Mem.install_page mem ~page:(0x1000_0000 / Mem.page_size) [| 1L |];
     Alcotest.fail "expected size rejection"
   with Invalid_argument _ -> ())

let test_page_data_and_touched () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 1;
  Mem.write_int mem (0x1000_0000 + Mem.page_size) 2;
  let touched = Mem.touched_pages mem ~kind:Mem.Rheap in
  Alcotest.(check int) "two pages" 2 (List.length touched);
  Alcotest.(check bool) "page data present" true
    (Mem.page_data mem ~page:(List.hd touched) <> None);
  Alcotest.(check int) "word count" (2 * Mem.words_per_page) (Mem.word_count mem)

(* ------------------------------ clone/CoW --------------------------- *)

let heap_page = 0x1000_0000 / Mem.page_size

let test_clone_shares_then_isolates () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 41;
  let c1 = Mem.clone mem in
  let c2 = Mem.clone mem in
  Alcotest.(check int) "clone reads template data" 41 (Mem.read_int c1 (addr 0));
  Alcotest.(check bool) "frames shared before write" true
    (Mem.shares_frame mem c1 ~page:heap_page);
  Alcotest.(check (option int)) "template+2 clones" (Some 3)
    (Mem.refcount mem ~page:heap_page);
  Mem.write_int c1 (addr 0) 99;
  Alcotest.(check int) "template unchanged" 41 (Mem.read_int mem (addr 0));
  Alcotest.(check int) "sibling unchanged" 41 (Mem.read_int c2 (addr 0));
  Alcotest.(check int) "clone sees its write" 99 (Mem.read_int c1 (addr 0));
  Alcotest.(check bool) "unshared after write" false
    (Mem.shares_frame mem c1 ~page:heap_page);
  Alcotest.(check (option int)) "writer owns its copy" (Some 1)
    (Mem.refcount c1 ~page:heap_page);
  Alcotest.(check (option int)) "template+sibling still share" (Some 2)
    (Mem.refcount mem ~page:heap_page)

let test_clone_dirty_tracking () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 1;
  Mem.write_int mem (0x1000_0000 + Mem.page_size) 2;
  let c = Mem.clone mem in
  Alcotest.(check (list int)) "clone starts clean" []
    (Mem.dirty_pages c ~kind:Mem.Rheap);
  ignore (Mem.read_int c (addr 5));
  Alcotest.(check (list int)) "reads stay clean" []
    (Mem.dirty_pages c ~kind:Mem.Rheap);
  Mem.write_int c (addr 3) 7;
  Mem.write_int c (addr 4) 8;
  Alcotest.(check (list int)) "one dirty page, deduped" [ heap_page ]
    (Mem.dirty_pages c ~kind:Mem.Rheap);
  (* a cold page written directly in the clone is dirty too *)
  Mem.write_int c (0x1000_0000 + (3 * Mem.page_size)) 9;
  Alcotest.(check (list int)) "cold write dirty" [ heap_page; heap_page + 3 ]
    (Mem.dirty_pages c ~kind:Mem.Rheap)

let test_cold_reads_share_zero_frame () =
  let mem = fresh () in
  let c = Mem.clone mem in
  Alcotest.(check int) "cold read zero" 0 (Mem.read_int c (addr 9));
  ignore (Mem.read_int mem (addr 9));
  Alcotest.(check bool) "both on the zero frame" true
    (Mem.shares_frame mem c ~page:heap_page);
  Alcotest.(check (option int)) "zero frame has no refcount" None
    (Mem.refcount c ~page:heap_page);
  Alcotest.(check int) "still counts as resident" Mem.words_per_page
    (Mem.word_count c);
  Mem.write_int c (addr 9) 5;
  Alcotest.(check int) "write privatizes" 5 (Mem.read_int c (addr 9));
  Alcotest.(check int) "template still zero" 0 (Mem.read_int mem (addr 9))

let test_drop_releases_refcounts () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 1;
  let c1 = Mem.clone mem in
  let c2 = Mem.clone mem in
  Alcotest.(check (option int)) "three holders" (Some 3)
    (Mem.refcount mem ~page:heap_page);
  Mem.drop c1;
  Alcotest.(check (option int)) "two after drop" (Some 2)
    (Mem.refcount mem ~page:heap_page);
  Mem.write_int c2 (addr 0) 2;
  Alcotest.(check (option int)) "template alone after CoW" (Some 1)
    (Mem.refcount mem ~page:heap_page);
  Alcotest.(check (option int)) "writer alone" (Some 1)
    (Mem.refcount c2 ~page:heap_page)

let test_cloned_from_provenance () =
  let mem = fresh () in
  let c = Mem.clone mem in
  Alcotest.(check bool) "clone remembers source" true
    (match Mem.cloned_from c with Some s -> s == mem | None -> false);
  Alcotest.(check bool) "root has no source" true (Mem.cloned_from mem = None);
  Alcotest.(check bool) "fork is not a clone" true
    (Mem.cloned_from (Mem.fork mem) = None)

(* ------------------------------ storage ----------------------------- *)

(* Deterministic distinct page images: page [k] differs from page [k'] in
   every word unless k = k'. *)
let page_of k =
  Array.init Mem.words_per_page (fun w -> Int64.of_int ((k * 8_191) + w))

let pages_of ks = List.mapi (fun i k -> (i, page_of k)) ks

let write_pages s label ks = Storage.write s ~label ~pages:(pages_of ks)

let check_err name expect = function
  | Ok _ -> Alcotest.failf "%s: read unexpectedly succeeded" name
  | Error e ->
    let got =
      match e with
      | Storage.Missing_blob _ -> "missing-blob"
      | Storage.Missing_page _ -> "missing-page"
      | Storage.Truncated_page _ -> "truncated"
      | Storage.Corrupt_page _ -> "corrupt"
    in
    Alcotest.(check string) name expect got

let test_storage_replace_and_labels () =
  let s = Storage.create () in
  write_pages s "a" [ 1; 2 ];
  write_pages s "b" [ 3 ];
  write_pages s "a" [ 4 ];          (* replaces the first "a" *)
  Alcotest.(check int) "replace" (2 * Storage.page_bytes)
    (Storage.total_bytes s);
  Alcotest.(check (list string)) "labels" [ "a"; "b" ] (Storage.labels s);
  Alcotest.(check (option int)) "blob bytes" (Some Storage.page_bytes)
    (Storage.blob_bytes s ~label:"a");
  Storage.delete s ~label:"a";
  Alcotest.(check bool) "gone" false (Storage.contains s ~label:"a");
  Alcotest.(check (option int)) "no bytes" None (Storage.blob_bytes s ~label:"a")

let test_storage_spooler_is_lazy () =
  let s = Storage.create () in
  write_pages s "a" [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "all queued" 5 (Storage.pending s);
  Alcotest.(check int) "logical counts queued pages" (5 * Storage.page_bytes)
    (Storage.total_bytes s);
  Alcotest.(check int) "nothing hashed yet" 0 (Storage.physical_bytes s);
  Alcotest.(check int) "bounded drain" 2 (Storage.drain ~max_pages:2 s);
  Alcotest.(check int) "three left" 3 (Storage.pending s);
  Alcotest.(check int) "rest" 3 (Storage.drain s);
  Alcotest.(check int) "queue empty" 0 (Storage.pending s);
  Alcotest.(check int) "all stored" (5 * Storage.page_bytes)
    (Storage.physical_bytes s)

let test_storage_read_settles_queue () =
  (* a read of a label with queued pages spools them first — and only
     them: other labels stay queued for the idle drain *)
  let s = Storage.create () in
  write_pages s "a" [ 1; 2 ];
  write_pages s "b" [ 3 ];
  (match Storage.read s ~label:"a" with
   | Ok pages ->
     Alcotest.(check int) "both pages back" 2 (List.length pages);
     List.iteri
       (fun i (index, data) ->
          Alcotest.(check int) "page index" i index;
          Alcotest.(check bool) "page words" true (data = page_of (i + 1)))
       pages
   | Error e -> Alcotest.fail (Storage.describe e));
  Alcotest.(check int) "b still queued" 1 (Storage.pending s)

let test_storage_dedup_and_refcounts () =
  let s = Storage.create () in
  (* page 7 appears in both blobs; page 1/2 are exclusive *)
  write_pages s "app1" [ 1; 7 ];
  write_pages s "app2" [ 2; 7 ];
  Storage.flush s;
  Alcotest.(check int) "logical: 4 pages" (4 * Storage.page_bytes)
    (Storage.total_bytes s);
  Alcotest.(check int) "physical: 3 frames" (3 * Storage.page_bytes)
    (Storage.physical_bytes s);
  let shared = Storage.page_hash (page_of 7) in
  Alcotest.(check (option int)) "shared frame refcount" (Some 2)
    (Storage.frame_refs s ~hash:shared);
  (* deleting one snapshot keeps the shared frame alive *)
  Storage.delete s ~label:"app1";
  Alcotest.(check (option int)) "survives one delete" (Some 1)
    (Storage.frame_refs s ~hash:shared);
  Alcotest.(check (option int)) "exclusive frame reclaimed" None
    (Storage.frame_refs s ~hash:(Storage.page_hash (page_of 1)));
  (match Storage.read s ~label:"app2" with
   | Ok pages -> Alcotest.(check int) "app2 intact" 2 (List.length pages)
   | Error e -> Alcotest.fail (Storage.describe e));
  Storage.delete s ~label:"app2";
  Alcotest.(check (option int)) "reclaimed at zero" None
    (Storage.frame_refs s ~hash:shared);
  Alcotest.(check int) "store empty" 0 (Storage.physical_bytes s)

let test_storage_accounting_shared_bytes () =
  let s = Storage.create () in
  write_pages s "app1" [ 1; 7; 8 ];
  write_pages s "app2" [ 2; 7; 8 ];
  Storage.flush s;
  let ac = Storage.accounting s in
  Alcotest.(check int) "blobs" 2 ac.Storage.ac_blobs;
  Alcotest.(check int) "pages" 6 ac.Storage.ac_pages;
  Alcotest.(check int) "frames" 4 ac.Storage.ac_frames;
  Alcotest.(check int) "shared = the two common frames"
    (2 * Storage.page_bytes) ac.Storage.ac_shared_bytes;
  Alcotest.(check int) "saved = logical - physical"
    (ac.Storage.ac_logical_bytes - ac.Storage.ac_physical_bytes)
    ac.Storage.ac_dedup_saved_bytes;
  match Storage.blob_accounting s with
  | [ a1; a2 ] ->
    Alcotest.(check string) "sorted by label" "app1" a1.Storage.ba_label;
    Alcotest.(check int) "app1 shared" (2 * Storage.page_bytes)
      a1.Storage.ba_shared_bytes;
    Alcotest.(check int) "app1 exclusive" Storage.page_bytes
      a1.Storage.ba_exclusive_bytes;
    Alcotest.(check int) "app2 shared" (2 * Storage.page_bytes)
      a2.Storage.ba_shared_bytes
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows)

let test_storage_corruption_detected () =
  let s = Storage.create () in
  write_pages s "a" [ 1; 2 ];
  Storage.flush s;
  Storage.corrupt s ~hash:(Storage.page_hash (page_of 2)) ~byte:17;
  check_err "flip caught" "corrupt" (Storage.read s ~label:"a");
  check_err "validate agrees" "corrupt" (Storage.validate s ~label:"a")

let test_storage_truncation_detected () =
  let s = Storage.create () in
  write_pages s "a" [ 1 ];
  Storage.flush s;
  Storage.truncate s ~hash:(Storage.page_hash (page_of 1)) ~keep:100;
  (match Storage.read s ~label:"a" with
   | Error (Storage.Truncated_page { got = 100; _ }) -> ()
   | Error e -> Alcotest.fail ("wrong error: " ^ Storage.describe e)
   | Ok _ -> Alcotest.fail "truncated page read back")

let test_storage_every_byte_flip_detected () =
  (* exhaustive: no single-byte corruption of a stored page escapes the
     content-address check, whatever the position *)
  let s = Storage.create () in
  write_pages s "a" [ 5 ];
  Storage.flush s;
  for i = 0 to Storage.page_bytes - 1 do
    let damage _pos b =
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
      b
    in
    match Storage.read ~damage s ~label:"a" with
    | Ok _ -> Alcotest.failf "flip at byte %d escaped the checksum" i
    | Error (Storage.Corrupt_page _) -> ()
    | Error e -> Alcotest.failf "byte %d: wrong error: %s" i (Storage.describe e)
  done

let test_storage_save_load_roundtrip () =
  let file = Filename.temp_file "repro-store" ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  let s = Storage.create () in
  write_pages s "app1" [ 1; 7 ];
  write_pages s "app2" [ 2; 7 ];
  Storage.save s file;
  let s', warnings = Storage.load file in
  Alcotest.(check (list string)) "clean load" [] warnings;
  Alcotest.(check (list string)) "labels" [ "app1"; "app2" ]
    (Storage.labels s');
  Alcotest.(check int) "physical preserved" (Storage.physical_bytes s)
    (Storage.physical_bytes s');
  Alcotest.(check (option int)) "refcounts recomputed" (Some 2)
    (Storage.frame_refs s' ~hash:(Storage.page_hash (page_of 7)));
  (match Storage.read s' ~label:"app1" with
   | Ok pages ->
     Alcotest.(check bool) "pages roundtrip" true
       (pages = [ (0, page_of 1); (1, page_of 7) ])
   | Error e -> Alcotest.fail (Storage.describe e));
  (* the byte layout is deterministic: saving the reloaded store
     reproduces the file exactly *)
  let file2 = Filename.temp_file "repro-store" ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove file2) @@ fun () ->
  Storage.save s' file2;
  let slurp f = In_channel.with_open_bin f In_channel.input_all in
  Alcotest.(check bool) "deterministic byte layout" true
    (String.equal (slurp file) (slurp file2))

let test_storage_load_degrades_on_partial_write () =
  let file = Filename.temp_file "repro-store" ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  let s = Storage.create () in
  write_pages s "app1" [ 1; 2 ];
  write_pages s "app2" [ 3 ];
  Storage.save s file;
  let full = In_channel.with_open_bin file In_channel.input_all in
  (* cut the file mid-way through the blob section: frames parse, some
     manifests are lost, and the loader reports — not raises *)
  let cut = String.length full - 7 in
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_string oc (String.sub full 0 cut));
  let s', warnings = Storage.load file in
  Alcotest.(check bool) "truncation reported" true (warnings <> []);
  List.iter
    (fun label ->
       match Storage.read s' ~label with
       | Ok _ -> ()
       | Error e ->
         Alcotest.failf "surviving blob %s unreadable: %s" label
           (Storage.describe e))
    (Storage.labels s')

let test_storage_load_drops_corrupt_frames () =
  let file = Filename.temp_file "repro-store" ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  let s = Storage.create () in
  write_pages s "a" [ 1 ];
  Storage.save s file;
  (* flip one byte of the frame data on disk; the loader must drop the
     frame (reported) and the blob must degrade to Missing_page *)
  let full = Bytes.of_string (In_channel.with_open_bin file In_channel.input_all) in
  (* layout: magic, frame count (4), then hash (4+16) and data (4+bytes);
     offset 100 into the frame's data bytes *)
  let pos = String.length "REPRO-STORE v1\n" + 4 + 4 + 16 + 4 + 100 in
  Bytes.set full pos (Char.chr (Char.code (Bytes.get full pos) lxor 0xFF));
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_bytes oc full);
  let s', warnings = Storage.load file in
  Alcotest.(check bool) "frame drop reported" true (warnings <> []);
  check_err "blob degrades to missing page" "missing-page"
    (Storage.read s' ~label:"a")

let test_storage_missing_blob () =
  let s = Storage.create () in
  check_err "missing blob" "missing-blob" (Storage.read s ~label:"nope")

(* ------------------------------ qcheck ------------------------------ *)

let prop_read_after_write =
  QCheck.Test.make ~name:"read-after-write across random offsets" ~count:300
    QCheck.(pair (int_bound (8 * Repro_os.Mem.words_per_page - 1)) int)
    (fun (word, value) ->
       let mem = fresh () in
       Mem.write_int mem (addr word) value;
       Mem.read_int mem (addr word) = value)

let prop_fork_isolation =
  QCheck.Test.make ~name:"fork isolation under random writes" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 30)
              (pair (int_bound 100) (int_bound 1000)))
    (fun writes ->
       let mem = fresh () in
       List.iter (fun (w, v) -> Mem.write_int mem (addr w) v) writes;
       let snapshot = List.map (fun (w, _) -> (w, Mem.read_int mem (addr w))) writes in
       let child = Mem.fork mem in
       (* parent mutates everything *)
       List.iter (fun (w, v) -> Mem.write_int mem (addr w) (v + 1)) writes;
       List.for_all (fun (w, v) -> Mem.read_int child (addr w) = v) snapshot)

let prop_clone_isolation =
  (* satellite (a): writes in one CoW clone are never visible in the
     template or in sibling clones *)
  QCheck.Test.make ~name:"clone isolation under random writes" ~count:100
    QCheck.(pair
              (list_of_size Gen.(int_range 1 20) (pair (int_bound 100) (int_bound 1000)))
              (list_of_size Gen.(int_range 1 20) (pair (int_bound 100) (int_bound 1000))))
    (fun (base_writes, clone_writes) ->
       let mem = fresh () in
       List.iter (fun (w, v) -> Mem.write_int mem (addr w) v) base_writes;
       let before = List.map (fun (w, _) -> (w, Mem.read_int mem (addr w))) base_writes in
       let c1 = Mem.clone mem in
       let c2 = Mem.clone mem in
       List.iter (fun (w, v) -> Mem.write_int c1 (addr w) (v + 7)) clone_writes;
       let expected =
         (* last write per word wins *)
         List.fold_left
           (fun acc (w, v) -> (w, v + 7) :: List.remove_assoc w acc)
           [] clone_writes
       in
       List.for_all (fun (w, v) -> Mem.read_int mem (addr w) = v) before
       && List.for_all (fun (w, v) -> Mem.read_int c2 (addr w) = v) before
       && List.for_all (fun (w, v) -> Mem.read_int c1 (addr w) = v) expected)

(* satellite (c): frame refcounts stay exact under arbitrary
   clone/write/drop sequences.  The model: a frame's refcount must equal
   the number of live spaces whose slot holds that very frame. *)
let prop_refcounts_exact =
  let apply_op live (op, a, b) =
    match live with
    | [] -> live
    | _ ->
      let pick xs k = List.nth xs (k mod List.length xs) in
      (match op mod 3 with
       | 0 when List.length live < 6 -> Mem.clone (pick live a) :: live
       | 1 ->
         Mem.write_int (pick live a) (addr ((b mod 8) * Mem.words_per_page)) b;
         live
       | 2 when List.length live > 1 ->
         let victim = pick live a in
         Mem.drop victim;
         List.filter (fun m -> m != victim) live
       | _ -> live)
  in
  QCheck.Test.make ~name:"refcounts exact under clone/write/drop" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 25)
              (triple (int_bound 1000) (int_bound 1000) (int_bound 1000)))
    (fun ops ->
       let root = fresh () in
       Mem.write_int root (addr 0) 1;
       Mem.write_int root (addr Mem.words_per_page) 2;
       let live = List.fold_left apply_op [ root ] ops in
       List.for_all
         (fun s ->
            List.for_all
              (fun page ->
                 match Mem.refcount s ~page with
                 | None -> true
                 | Some rc ->
                   rc
                   = List.length
                       (List.filter (fun s' -> Mem.shares_frame s s' ~page) live))
              (List.init 8 (fun i -> heap_page + i)))
         live)

(* -------------------------- storage qcheck -------------------------- *)

(* random stores: up to 4 blobs, each a short list of page keys drawn from
   a small pool so cross-blob (and in-blob) sharing is common *)
let blobs_gen =
  QCheck.(list_of_size Gen.(int_range 1 4)
            (list_of_size Gen.(int_range 1 6) (int_bound 7)))

let labelled blobs = List.mapi (fun i ks -> ("blob" ^ string_of_int i, ks)) blobs

let build_store blobs =
  let s = Storage.create () in
  List.iter (fun (label, ks) -> write_pages s label ks) (labelled blobs);
  s

let prop_storage_roundtrip =
  QCheck.Test.make ~name:"storage: write/read round-trip" ~count:200
    blobs_gen
    (fun blobs ->
       let s = build_store blobs in
       List.for_all
         (fun (label, ks) ->
            match Storage.read s ~label with
            | Ok pages -> pages = pages_of ks
            | Error _ -> false)
         (labelled blobs))

let prop_storage_refcounts_exact =
  (* a frame's refcount equals the number of manifest entries pointing at
     it, across arbitrary write/replace sequences; deleting one blob
     decrements exactly its own references and shared pages survive *)
  QCheck.Test.make ~name:"storage: dedup refcounts exact" ~count:200
    QCheck.(pair blobs_gen (int_bound 3))
    (fun (blobs, victim) ->
       let s = build_store blobs in
       Storage.flush s;
       let entries_of blobs =
         List.concat_map (fun (_, ks) -> ks) (labelled blobs)
       in
       let refs_ok blobs =
         let entries = entries_of blobs in
         List.for_all
           (fun k ->
              let expected =
                List.length (List.filter (fun k' -> k' = k) entries)
              in
              match Storage.frame_refs s ~hash:(Storage.page_hash (page_of k)) with
              | Some rc -> rc = expected
              | None -> expected = 0)
           (List.init 8 Fun.id)
       in
       refs_ok blobs
       && begin
         (* delete one blob: survivors keep every shared page readable *)
         let all = labelled blobs in
         let victim_label, _ = List.nth all (victim mod List.length all) in
         Storage.delete s ~label:victim_label;
         let rest = List.filter (fun (l, _) -> l <> victim_label) all in
         refs_ok (List.map snd rest)
         && List.for_all
              (fun (label, ks) ->
                 match Storage.read s ~label with
                 | Ok pages -> pages = pages_of ks
                 | Error _ -> false)
              rest
       end)

let prop_storage_flip_detected =
  QCheck.Test.make ~name:"storage: any single-byte flip detected" ~count:300
    QCheck.(triple blobs_gen (int_bound 10_000) (int_range 1 255))
    (fun (blobs, pos, mask) ->
       let s = build_store blobs in
       Storage.flush s;
       let label, ks = List.hd (labelled blobs) in
       let victim_page = pos mod List.length ks in
       let victim_byte = pos mod Storage.page_bytes in
       let damage p b =
         if p = victim_page then begin
           Bytes.set b victim_byte
             (Char.chr (Char.code (Bytes.get b victim_byte) lxor mask));
           b
         end
         else b
       in
       match Storage.read ~damage s ~label with
       | Error (Storage.Corrupt_page _) -> true
       | Ok _ | Error _ -> false)

let prop_storage_totals_dedup_adjusted =
  QCheck.Test.make ~name:"storage: totals equal dedup-adjusted sum" ~count:200
    blobs_gen
    (fun blobs ->
       let s = build_store blobs in
       Storage.flush s;
       let entries = List.concat blobs in
       let distinct = List.sort_uniq Int.compare entries in
       let ac = Storage.accounting s in
       ac.Storage.ac_logical_bytes
       = List.length entries * Storage.page_bytes
       && ac.Storage.ac_physical_bytes
          = List.length distinct * Storage.page_bytes
       && ac.Storage.ac_dedup_saved_bytes
          = ac.Storage.ac_logical_bytes - ac.Storage.ac_physical_bytes
       && Storage.total_bytes s = ac.Storage.ac_logical_bytes
       && Storage.physical_bytes s = ac.Storage.ac_physical_bytes
       && ac.Storage.ac_shared_bytes <= ac.Storage.ac_physical_bytes
       (* per-blob rows are consistent with the totals *)
       && List.fold_left (fun acc r -> acc + r.Storage.ba_bytes) 0
            (Storage.blob_accounting s)
          = ac.Storage.ac_logical_bytes)

(* ----------------------- tiering / eviction --------------------------- *)

let test_storage_evict_to_budget () =
  let s = Storage.create () in
  write_pages s "cold" [ 1; 2 ];
  write_pages s "warm" [ 3; 4 ];
  write_pages s "shared" [ 1; 5 ];   (* shares frame 1 with "cold" *)
  Storage.flush s;
  ignore (Storage.read s ~label:"warm");
  ignore (Storage.read s ~label:"shared");
  Alcotest.(check int) "five distinct frames" (5 * Storage.page_bytes)
    (Storage.physical_bytes s);
  let evicted = Storage.evict_to s ~budget_bytes:(4 * Storage.page_bytes) in
  Alcotest.(check (list string)) "least-recently-touched blob goes first"
    [ "cold" ] evicted;
  Alcotest.(check bool) "evicted blob gone" false
    (Storage.contains s ~label:"cold");
  (* frame 1 must survive: the surviving "shared" blob still references
     it — refcount-driven tiering, not blind deletion *)
  Alcotest.(check bool) "shared frame kept readable" true
    (Result.is_ok (Storage.read s ~label:"shared"));
  Alcotest.(check int) "within budget" (4 * Storage.page_bytes)
    (Storage.physical_bytes s);
  (* a zero budget drains the rest, deterministically *)
  let rest = Storage.evict_to s ~budget_bytes:0 in
  Alcotest.(check int) "remaining blobs evicted" 2 (List.length rest);
  Alcotest.(check int) "store empty" 0 (Storage.physical_bytes s)

let test_storage_evict_noop_within_budget () =
  let s = Storage.create () in
  write_pages s "a" [ 1 ];
  Storage.flush s;
  Alcotest.(check (list string)) "nothing to do" []
    (Storage.evict_to s ~budget_bytes:(10 * Storage.page_bytes));
  Alcotest.(check bool) "blob intact" true (Storage.contains s ~label:"a")

(* -------------------------- string framing ---------------------------- *)

let test_storage_string_framing_roundtrip () =
  let roundtrip text =
    match Storage.string_of_pages (Storage.pages_of_string text) with
    | Ok text' -> Alcotest.(check string) "round trip" text text'
    | Error why -> Alcotest.fail why
  in
  roundtrip "";
  roundtrip "hello\tworld\n";
  roundtrip (String.init 10_000 (fun i -> Char.chr (i mod 256)));
  (match Storage.string_of_pages [ (0, [| 1L |]) ] with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bad geometry accepted");
  (* a page image whose length prefix exceeds the payload is malformed *)
  match
    Storage.string_of_pages
      (List.map
         (fun (i, words) ->
            if i = 0 then begin
              let w = Array.copy words in
              w.(0) <- Int64.max_int;
              (i, w)
            end
            else (i, words))
         (Storage.pages_of_string "payload"))
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad length prefix accepted"

let () =
  Alcotest.run "os"
    [ ("mem",
       [ Alcotest.test_case "zero fill" `Quick test_zero_fill;
         Alcotest.test_case "word roundtrip" `Quick test_word_roundtrip;
         Alcotest.test_case "mapping rules" `Quick test_mapping_rules;
         Alcotest.test_case "kind of page" `Quick test_kind_of_page ]);
      ("protection",
       [ Alcotest.test_case "lifecycle" `Quick test_protection_lifecycle;
         Alcotest.test_case "write faults" `Quick test_write_faults_too;
         Alcotest.test_case "untouched noop" `Quick test_protect_untouched_noop ]);
      ("fork",
       [ Alcotest.test_case "shares until write" `Quick test_fork_shares_until_write;
         Alcotest.test_case "child write CoW" `Quick test_child_write_cow;
         Alcotest.test_case "fork chain" `Quick test_fork_chain;
         Alcotest.test_case "fork then protect" `Quick test_fork_after_protection ]);
      ("pages",
       [ Alcotest.test_case "install page" `Quick test_install_page;
         Alcotest.test_case "page data" `Quick test_page_data_and_touched ]);
      ("clone",
       [ Alcotest.test_case "shares then isolates" `Quick test_clone_shares_then_isolates;
         Alcotest.test_case "dirty tracking" `Quick test_clone_dirty_tracking;
         Alcotest.test_case "zero frame" `Quick test_cold_reads_share_zero_frame;
         Alcotest.test_case "drop refcounts" `Quick test_drop_releases_refcounts;
         Alcotest.test_case "provenance" `Quick test_cloned_from_provenance ]);
      ("storage",
       [ Alcotest.test_case "replace/labels" `Quick test_storage_replace_and_labels;
         Alcotest.test_case "spooler is lazy" `Quick test_storage_spooler_is_lazy;
         Alcotest.test_case "read settles queue" `Quick test_storage_read_settles_queue;
         Alcotest.test_case "dedup refcounts" `Quick test_storage_dedup_and_refcounts;
         Alcotest.test_case "shared-bytes accounting" `Quick
           test_storage_accounting_shared_bytes;
         Alcotest.test_case "corruption detected" `Quick test_storage_corruption_detected;
         Alcotest.test_case "truncation detected" `Quick test_storage_truncation_detected;
         Alcotest.test_case "every byte flip detected" `Slow
           test_storage_every_byte_flip_detected;
         Alcotest.test_case "save/load roundtrip" `Quick test_storage_save_load_roundtrip;
         Alcotest.test_case "load degrades on partial write" `Quick
           test_storage_load_degrades_on_partial_write;
         Alcotest.test_case "load drops corrupt frames" `Quick
           test_storage_load_drops_corrupt_frames;
         Alcotest.test_case "missing blob" `Quick test_storage_missing_blob;
         Alcotest.test_case "evict to budget" `Quick
           test_storage_evict_to_budget;
         Alcotest.test_case "evict noop within budget" `Quick
           test_storage_evict_noop_within_budget;
         Alcotest.test_case "string framing roundtrip" `Quick
           test_storage_string_framing_roundtrip ]);
      ("os-properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_read_after_write; prop_fork_isolation; prop_clone_isolation;
           prop_refcounts_exact; prop_storage_roundtrip;
           prop_storage_refcounts_exact; prop_storage_flip_detected;
           prop_storage_totals_dedup_adjusted ]) ]
