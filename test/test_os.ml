(* Tests for the OS substrate: paged memory, protection, fork/CoW chains,
   page install, mappings, storage. *)

module Mem = Repro_os.Mem
module Storage = Repro_os.Storage

let fresh ?(npages = 8) () =
  let mem = Mem.create () in
  Mem.map mem ~base:0x1000_0000 ~npages ~kind:Mem.Rheap ~name:"heap";
  mem

let addr i = 0x1000_0000 + (i * 8)

(* ------------------------------- basics ----------------------------- *)

let test_zero_fill () =
  let mem = fresh () in
  Alcotest.(check int) "untouched reads zero" 0 (Mem.read_int mem (addr 5))

let test_word_roundtrip () =
  let mem = fresh () in
  Mem.write_word mem (addr 0) 0x0123_4567_89AB_CDEFL;
  Alcotest.(check bool) "word" true
    (Mem.read_word mem (addr 0) = 0x0123_4567_89AB_CDEFL);
  Mem.write_float mem (addr 1) 2.718281828;
  Alcotest.(check (float 1e-12)) "float" 2.718281828 (Mem.read_float mem (addr 1));
  Mem.write_int mem (addr 2) (-42);
  Alcotest.(check int) "negative int" (-42) (Mem.read_int mem (addr 2))

let test_mapping_rules () =
  let mem = fresh () in
  (try
     Mem.map mem ~base:0x1000_0000 ~npages:1 ~kind:Mem.Rcode ~name:"overlap";
     Alcotest.fail "expected overlap rejection"
   with Invalid_argument _ -> ());
  (try
     Mem.map mem ~base:0x2000_0001 ~npages:1 ~kind:Mem.Rcode ~name:"unaligned";
     Alcotest.fail "expected alignment rejection"
   with Invalid_argument _ -> ());
  Mem.map mem ~base:0x2000_0000 ~npages:2 ~kind:Mem.Rcode ~name:"lib.so";
  Alcotest.(check int) "two mappings" 2 (List.length (Mem.mappings mem));
  Alcotest.(check bool) "ascending" true
    (match Mem.mappings mem with
     | [ a; b ] -> a.Mem.map_base < b.Mem.map_base
     | _ -> false)

let test_kind_of_page () =
  let mem = fresh () in
  Alcotest.(check bool) "heap kind" true
    (Mem.kind_of_page mem (0x1000_0000 / Mem.page_size) = Some Mem.Rheap);
  Alcotest.(check bool) "unmapped" true
    (Mem.kind_of_page mem 0 = None)

(* ----------------------------- protection --------------------------- *)

let test_protection_lifecycle () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 7;
  let page = 0x1000_0000 / Mem.page_size in
  Mem.protect mem ~page;
  Alcotest.(check bool) "protected" true (Mem.protected mem ~page);
  (* access clears protection even with no handler *)
  Alcotest.(check int) "read proceeds" 7 (Mem.read_int mem (addr 0));
  Alcotest.(check bool) "unprotected after fault" false (Mem.protected mem ~page)

let test_write_faults_too () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 1;
  let page = 0x1000_0000 / Mem.page_size in
  let faults = ref 0 in
  Mem.set_fault_handler mem (Some (fun _ -> incr faults));
  Mem.protect mem ~page;
  Mem.write_int mem (addr 1) 2;
  Alcotest.(check int) "write faulted" 1 !faults;
  Mem.write_int mem (addr 2) 3;
  Alcotest.(check int) "second write silent" 1 !faults

let test_protect_untouched_noop () =
  let mem = fresh () in
  Mem.protect mem ~page:(0x1000_0000 / Mem.page_size);
  Alcotest.(check bool) "not materialized, not protected" false
    (Mem.protected mem ~page:(0x1000_0000 / Mem.page_size))

(* ------------------------------ fork/CoW ---------------------------- *)

let test_fork_shares_until_write () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 10;
  let child = Mem.fork mem in
  Alcotest.(check int) "child reads parent data" 10 (Mem.read_int child (addr 0));
  Alcotest.(check int) "no CoW yet" 0 (Mem.stats mem).Mem.n_cow;
  Mem.write_int mem (addr 0) 20;
  Alcotest.(check int) "one CoW" 1 (Mem.stats mem).Mem.n_cow;
  Alcotest.(check int) "child keeps original" 10 (Mem.read_int child (addr 0));
  Mem.write_int mem (addr 0) 30;
  Alcotest.(check int) "second write no CoW" 1 (Mem.stats mem).Mem.n_cow

let test_child_write_cow () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 10;
  let child = Mem.fork mem in
  Mem.write_int child (addr 0) 99;
  Alcotest.(check int) "parent unaffected" 10 (Mem.read_int mem (addr 0));
  Alcotest.(check int) "child sees its write" 99 (Mem.read_int child (addr 0))

let test_fork_chain () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 1;
  let c1 = Mem.fork mem in
  let c2 = Mem.fork mem in
  Mem.write_int mem (addr 0) 2;
  Alcotest.(check int) "c1 original" 1 (Mem.read_int c1 (addr 0));
  Alcotest.(check int) "c2 original" 1 (Mem.read_int c2 (addr 0));
  Mem.write_int c1 (addr 0) 3;
  Alcotest.(check int) "c2 still original" 1 (Mem.read_int c2 (addr 0))

let test_fork_after_protection () =
  (* the capture ordering: fork first, then protect the parent; child
     accesses must not fault *)
  let mem = fresh () in
  Mem.write_int mem (addr 0) 5;
  let child = Mem.fork mem in
  let page = 0x1000_0000 / Mem.page_size in
  Mem.protect mem ~page;
  Alcotest.(check bool) "child unprotected" false (Mem.protected child ~page);
  Alcotest.(check int) "child reads freely" 5 (Mem.read_int child (addr 0))

(* ---------------------------- install_page -------------------------- *)

let test_install_page () =
  let mem = fresh () in
  let data = Array.make Mem.words_per_page 0L in
  data.(3) <- 77L;
  Mem.install_page mem ~page:(0x1000_0000 / Mem.page_size) data;
  Alcotest.(check int) "installed word" 77 (Mem.read_int mem (addr 3));
  data.(3) <- 0L;
  Alcotest.(check int) "copied, not aliased" 77 (Mem.read_int mem (addr 3));
  (try
     Mem.install_page mem ~page:0 data;
     Alcotest.fail "expected unmapped rejection"
   with Invalid_argument _ -> ());
  (try
     Mem.install_page mem ~page:(0x1000_0000 / Mem.page_size) [| 1L |];
     Alcotest.fail "expected size rejection"
   with Invalid_argument _ -> ())

let test_page_data_and_touched () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 1;
  Mem.write_int mem (0x1000_0000 + Mem.page_size) 2;
  let touched = Mem.touched_pages mem ~kind:Mem.Rheap in
  Alcotest.(check int) "two pages" 2 (List.length touched);
  Alcotest.(check bool) "page data present" true
    (Mem.page_data mem ~page:(List.hd touched) <> None);
  Alcotest.(check int) "word count" (2 * Mem.words_per_page) (Mem.word_count mem)

(* ------------------------------ clone/CoW --------------------------- *)

let heap_page = 0x1000_0000 / Mem.page_size

let test_clone_shares_then_isolates () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 41;
  let c1 = Mem.clone mem in
  let c2 = Mem.clone mem in
  Alcotest.(check int) "clone reads template data" 41 (Mem.read_int c1 (addr 0));
  Alcotest.(check bool) "frames shared before write" true
    (Mem.shares_frame mem c1 ~page:heap_page);
  Alcotest.(check (option int)) "template+2 clones" (Some 3)
    (Mem.refcount mem ~page:heap_page);
  Mem.write_int c1 (addr 0) 99;
  Alcotest.(check int) "template unchanged" 41 (Mem.read_int mem (addr 0));
  Alcotest.(check int) "sibling unchanged" 41 (Mem.read_int c2 (addr 0));
  Alcotest.(check int) "clone sees its write" 99 (Mem.read_int c1 (addr 0));
  Alcotest.(check bool) "unshared after write" false
    (Mem.shares_frame mem c1 ~page:heap_page);
  Alcotest.(check (option int)) "writer owns its copy" (Some 1)
    (Mem.refcount c1 ~page:heap_page);
  Alcotest.(check (option int)) "template+sibling still share" (Some 2)
    (Mem.refcount mem ~page:heap_page)

let test_clone_dirty_tracking () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 1;
  Mem.write_int mem (0x1000_0000 + Mem.page_size) 2;
  let c = Mem.clone mem in
  Alcotest.(check (list int)) "clone starts clean" []
    (Mem.dirty_pages c ~kind:Mem.Rheap);
  ignore (Mem.read_int c (addr 5));
  Alcotest.(check (list int)) "reads stay clean" []
    (Mem.dirty_pages c ~kind:Mem.Rheap);
  Mem.write_int c (addr 3) 7;
  Mem.write_int c (addr 4) 8;
  Alcotest.(check (list int)) "one dirty page, deduped" [ heap_page ]
    (Mem.dirty_pages c ~kind:Mem.Rheap);
  (* a cold page written directly in the clone is dirty too *)
  Mem.write_int c (0x1000_0000 + (3 * Mem.page_size)) 9;
  Alcotest.(check (list int)) "cold write dirty" [ heap_page; heap_page + 3 ]
    (Mem.dirty_pages c ~kind:Mem.Rheap)

let test_cold_reads_share_zero_frame () =
  let mem = fresh () in
  let c = Mem.clone mem in
  Alcotest.(check int) "cold read zero" 0 (Mem.read_int c (addr 9));
  ignore (Mem.read_int mem (addr 9));
  Alcotest.(check bool) "both on the zero frame" true
    (Mem.shares_frame mem c ~page:heap_page);
  Alcotest.(check (option int)) "zero frame has no refcount" None
    (Mem.refcount c ~page:heap_page);
  Alcotest.(check int) "still counts as resident" Mem.words_per_page
    (Mem.word_count c);
  Mem.write_int c (addr 9) 5;
  Alcotest.(check int) "write privatizes" 5 (Mem.read_int c (addr 9));
  Alcotest.(check int) "template still zero" 0 (Mem.read_int mem (addr 9))

let test_drop_releases_refcounts () =
  let mem = fresh () in
  Mem.write_int mem (addr 0) 1;
  let c1 = Mem.clone mem in
  let c2 = Mem.clone mem in
  Alcotest.(check (option int)) "three holders" (Some 3)
    (Mem.refcount mem ~page:heap_page);
  Mem.drop c1;
  Alcotest.(check (option int)) "two after drop" (Some 2)
    (Mem.refcount mem ~page:heap_page);
  Mem.write_int c2 (addr 0) 2;
  Alcotest.(check (option int)) "template alone after CoW" (Some 1)
    (Mem.refcount mem ~page:heap_page);
  Alcotest.(check (option int)) "writer alone" (Some 1)
    (Mem.refcount c2 ~page:heap_page)

let test_cloned_from_provenance () =
  let mem = fresh () in
  let c = Mem.clone mem in
  Alcotest.(check bool) "clone remembers source" true
    (match Mem.cloned_from c with Some s -> s == mem | None -> false);
  Alcotest.(check bool) "root has no source" true (Mem.cloned_from mem = None);
  Alcotest.(check bool) "fork is not a clone" true
    (Mem.cloned_from (Mem.fork mem) = None)

(* ------------------------------ storage ----------------------------- *)

let test_storage_replace_and_labels () =
  let s = Storage.create () in
  Storage.write s ~label:"a" ~bytes:100;
  Storage.write s ~label:"b" ~bytes:50;
  Storage.write s ~label:"a" ~bytes:70;
  Alcotest.(check int) "replace" 120 (Storage.total_bytes s);
  Alcotest.(check (list string)) "labels" [ "a"; "b" ] (Storage.labels s);
  Storage.delete s ~label:"a";
  Alcotest.(check (option int)) "gone" None (Storage.size s ~label:"a")

(* ------------------------------ qcheck ------------------------------ *)

let prop_read_after_write =
  QCheck.Test.make ~name:"read-after-write across random offsets" ~count:300
    QCheck.(pair (int_bound (8 * Repro_os.Mem.words_per_page - 1)) int)
    (fun (word, value) ->
       let mem = fresh () in
       Mem.write_int mem (addr word) value;
       Mem.read_int mem (addr word) = value)

let prop_fork_isolation =
  QCheck.Test.make ~name:"fork isolation under random writes" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 30)
              (pair (int_bound 100) (int_bound 1000)))
    (fun writes ->
       let mem = fresh () in
       List.iter (fun (w, v) -> Mem.write_int mem (addr w) v) writes;
       let snapshot = List.map (fun (w, _) -> (w, Mem.read_int mem (addr w))) writes in
       let child = Mem.fork mem in
       (* parent mutates everything *)
       List.iter (fun (w, v) -> Mem.write_int mem (addr w) (v + 1)) writes;
       List.for_all (fun (w, v) -> Mem.read_int child (addr w) = v) snapshot)

let prop_clone_isolation =
  (* satellite (a): writes in one CoW clone are never visible in the
     template or in sibling clones *)
  QCheck.Test.make ~name:"clone isolation under random writes" ~count:100
    QCheck.(pair
              (list_of_size Gen.(int_range 1 20) (pair (int_bound 100) (int_bound 1000)))
              (list_of_size Gen.(int_range 1 20) (pair (int_bound 100) (int_bound 1000))))
    (fun (base_writes, clone_writes) ->
       let mem = fresh () in
       List.iter (fun (w, v) -> Mem.write_int mem (addr w) v) base_writes;
       let before = List.map (fun (w, _) -> (w, Mem.read_int mem (addr w))) base_writes in
       let c1 = Mem.clone mem in
       let c2 = Mem.clone mem in
       List.iter (fun (w, v) -> Mem.write_int c1 (addr w) (v + 7)) clone_writes;
       let expected =
         (* last write per word wins *)
         List.fold_left
           (fun acc (w, v) -> (w, v + 7) :: List.remove_assoc w acc)
           [] clone_writes
       in
       List.for_all (fun (w, v) -> Mem.read_int mem (addr w) = v) before
       && List.for_all (fun (w, v) -> Mem.read_int c2 (addr w) = v) before
       && List.for_all (fun (w, v) -> Mem.read_int c1 (addr w) = v) expected)

(* satellite (c): frame refcounts stay exact under arbitrary
   clone/write/drop sequences.  The model: a frame's refcount must equal
   the number of live spaces whose slot holds that very frame. *)
let prop_refcounts_exact =
  let apply_op live (op, a, b) =
    match live with
    | [] -> live
    | _ ->
      let pick xs k = List.nth xs (k mod List.length xs) in
      (match op mod 3 with
       | 0 when List.length live < 6 -> Mem.clone (pick live a) :: live
       | 1 ->
         Mem.write_int (pick live a) (addr ((b mod 8) * Mem.words_per_page)) b;
         live
       | 2 when List.length live > 1 ->
         let victim = pick live a in
         Mem.drop victim;
         List.filter (fun m -> m != victim) live
       | _ -> live)
  in
  QCheck.Test.make ~name:"refcounts exact under clone/write/drop" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 25)
              (triple (int_bound 1000) (int_bound 1000) (int_bound 1000)))
    (fun ops ->
       let root = fresh () in
       Mem.write_int root (addr 0) 1;
       Mem.write_int root (addr Mem.words_per_page) 2;
       let live = List.fold_left apply_op [ root ] ops in
       List.for_all
         (fun s ->
            List.for_all
              (fun page ->
                 match Mem.refcount s ~page with
                 | None -> true
                 | Some rc ->
                   rc
                   = List.length
                       (List.filter (fun s' -> Mem.shares_frame s s' ~page) live))
              (List.init 8 (fun i -> heap_page + i)))
         live)

let () =
  Alcotest.run "os"
    [ ("mem",
       [ Alcotest.test_case "zero fill" `Quick test_zero_fill;
         Alcotest.test_case "word roundtrip" `Quick test_word_roundtrip;
         Alcotest.test_case "mapping rules" `Quick test_mapping_rules;
         Alcotest.test_case "kind of page" `Quick test_kind_of_page ]);
      ("protection",
       [ Alcotest.test_case "lifecycle" `Quick test_protection_lifecycle;
         Alcotest.test_case "write faults" `Quick test_write_faults_too;
         Alcotest.test_case "untouched noop" `Quick test_protect_untouched_noop ]);
      ("fork",
       [ Alcotest.test_case "shares until write" `Quick test_fork_shares_until_write;
         Alcotest.test_case "child write CoW" `Quick test_child_write_cow;
         Alcotest.test_case "fork chain" `Quick test_fork_chain;
         Alcotest.test_case "fork then protect" `Quick test_fork_after_protection ]);
      ("pages",
       [ Alcotest.test_case "install page" `Quick test_install_page;
         Alcotest.test_case "page data" `Quick test_page_data_and_touched ]);
      ("clone",
       [ Alcotest.test_case "shares then isolates" `Quick test_clone_shares_then_isolates;
         Alcotest.test_case "dirty tracking" `Quick test_clone_dirty_tracking;
         Alcotest.test_case "zero frame" `Quick test_cold_reads_share_zero_frame;
         Alcotest.test_case "drop refcounts" `Quick test_drop_releases_refcounts;
         Alcotest.test_case "provenance" `Quick test_cloned_from_provenance ]);
      ("storage",
       [ Alcotest.test_case "replace/labels" `Quick test_storage_replace_and_labels ]);
      ("os-properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_read_after_write; prop_fork_isolation; prop_clone_isolation;
           prop_refcounts_exact ]) ]
