(* Tests for the pipeline tracing/metrics layer (Repro_util.Trace):

   - span nesting is well-formed (every B has a matching E, per-domain
     stack discipline), both for hand-written scenarios and qcheck-random
     span trees;
   - counters sum correctly under concurrent increments from 4 domains;
   - disabled tracing is a no-op;
   - a 4-domain Evalpool run produces a *parseable* merged Chrome trace
     with no interleaving corruption (checked with a small JSON parser);
   - the Chrome exporter's byte format is locked by a golden fixture
     (regenerate with TRACE_GOLDEN_UPDATE=/abs/path/trace_golden.json);
   - the full search remains byte-identical across -j 1 / -j 4 with
     tracing enabled (the PR-1 determinism contract), and its trace
     contains the spans the paper's figures are mapped to. *)

module Trace = Repro_util.Trace
module Rng = Repro_util.Rng
module Evalpool = Repro_search.Evalpool
module Genome = Repro_search.Genome
module Ga = Repro_search.Ga
module Pipeline = Repro_core.Pipeline
module App = Repro_apps.Registry

let with_tracing f =
  Trace.reset ();
  Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
        Trace.disable ();
        Trace.reset ())
    f

(* Per-domain stack discipline over the merged event list: group by tid in
   emission order, then require every E to close the matching open B and
   every stack to end empty. *)
let well_formed events =
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun ev ->
       let prev =
         Option.value ~default:[] (Hashtbl.find_opt by_tid ev.Trace.ev_tid)
       in
       Hashtbl.replace by_tid ev.Trace.ev_tid (ev :: prev))
    events;
  Hashtbl.fold
    (fun _tid rev_evs ok ->
       ok
       &&
       let evs =
         List.sort
           (fun a b -> compare a.Trace.ev_seq b.Trace.ev_seq)
           rev_evs
       in
       let rec go stack = function
         | [] -> stack = []
         | ev :: rest ->
           (match ev.Trace.ev_ph with
            | Trace.B -> go (ev.Trace.ev_name :: stack) rest
            | Trace.E ->
              (match stack with
               | top :: stack' when top = ev.Trace.ev_name -> go stack' rest
               | _ -> false))
       in
       go [] evs)
    by_tid true

(* --------------------------- span basics ---------------------------- *)

let test_span_basics () =
  with_tracing @@ fun () ->
  let v = Trace.span "outer" (fun () -> Trace.span "inner" (fun () -> 42)) in
  Alcotest.(check int) "span returns the body's value" 42 v;
  let evs = Trace.events () in
  Alcotest.(check (list string)) "B/E nesting order"
    [ "B outer"; "B inner"; "E inner"; "E outer" ]
    (List.map
       (fun ev ->
          (match ev.Trace.ev_ph with Trace.B -> "B " | Trace.E -> "E ")
          ^ ev.Trace.ev_name)
       evs);
  Alcotest.(check bool) "well-formed" true (well_formed evs);
  Alcotest.(check bool) "timestamps non-decreasing" true
    (let rec mono = function
       | a :: (b :: _ as rest) -> a.Trace.ev_ts <= b.Trace.ev_ts && mono rest
       | _ -> true
     in
     mono evs)

let test_span_exception_safe () =
  with_tracing @@ fun () ->
  (try Trace.span "boom" (fun () -> raise Exit) with Exit -> ());
  let evs = Trace.events () in
  Alcotest.(check int) "B and E both emitted" 2 (List.length evs);
  Alcotest.(check bool) "still well-formed" true (well_formed evs)

let test_disabled_is_noop () =
  Trace.reset ();
  Trace.disable ();
  let v = Trace.span "invisible" (fun () -> Trace.incr "invisible.n"; 7) in
  Alcotest.(check int) "span still runs the body" 7 v;
  Alcotest.(check (list reject)) "no events recorded"
    [] (Trace.events ());
  Alcotest.(check int) "no counter recorded" 0
    (Trace.counter_value "invisible.n");
  (try Trace.span "invisible" (fun () -> raise Exit) with Exit -> ());
  Alcotest.(check (list reject)) "still nothing" [] (Trace.events ())

(* ------------------------ random span trees ------------------------- *)

type tree = Node of int * tree list

let gen_tree =
  QCheck.Gen.(
    sized @@ fix (fun self size ->
        map2
          (fun name kids -> Node (name, kids))
          (int_bound 5)
          (if size = 0 then return []
           else list_size (int_bound 3) (self (size / 4)))))

let rec count_nodes (Node (_, kids)) =
  1 + List.fold_left (fun acc k -> acc + count_nodes k) 0 kids

let rec run_tree (Node (name, kids)) =
  Trace.span (Printf.sprintf "node-%d" name) (fun () ->
      List.iter run_tree kids)

let prop_tree_well_formed =
  QCheck.Test.make ~name:"random span trees stay well-formed" ~count:100
    (QCheck.make ~print:(fun t -> string_of_int (count_nodes t)) gen_tree)
    (fun t ->
       with_tracing @@ fun () ->
       run_tree t;
       let evs = Trace.events () in
       List.length evs = 2 * count_nodes t && well_formed evs)

let test_four_domain_trees_well_formed () =
  with_tracing @@ fun () ->
  let rec spans depth rng =
    let width = 1 + Rng.int rng 3 in
    for i = 0 to width - 1 do
      Trace.span (Printf.sprintf "d%d-%d" depth i) (fun () ->
          if depth < 4 then spans (depth + 1) rng)
    done
  in
  let domains =
    Array.init 4 (fun k -> Domain.spawn (fun () -> spans 0 (Rng.create k)))
  in
  spans 0 (Rng.create 99);
  Array.iter Domain.join domains;
  let evs = Trace.events () in
  let tids =
    List.sort_uniq compare (List.map (fun ev -> ev.Trace.ev_tid) evs)
  in
  Alcotest.(check bool) "5 domains emitted" true (List.length tids = 5);
  Alcotest.(check bool) "merged trace well-formed per domain" true
    (well_formed evs)

(* --------------------------- counters ------------------------------- *)

let test_counters_sum_across_domains () =
  with_tracing @@ fun () ->
  let per_domain = 1000 in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Trace.incr "test.hits"
            done))
  in
  for _ = 1 to per_domain do
    Trace.incr "test.hits"
  done;
  Trace.add "test.bulk" 17;
  Array.iter Domain.join domains;
  Alcotest.(check int) "5 x 1000 increments survive" 5000
    (Trace.counter_value "test.hits");
  Alcotest.(check int) "bulk add" 17 (Trace.counter_value "test.bulk");
  Alcotest.(check (list (pair string int))) "sorted counter listing"
    [ ("test.bulk", 17); ("test.hits", 5000) ]
    (Trace.counters ())

(* ----------------------- a minimal JSON parser ----------------------- *)

(* Enough of RFC 8259 to prove the exporter's output is parseable: objects,
   arrays, strings with escapes, numbers, and literals. *)
type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "dangling escape");
        let e = s.[!pos] in
        advance ();
        (match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
            | Some _ -> Buffer.add_char buf '?'  (* outside this test's needs *)
            | None -> fail "bad \\u escape")
         | _ -> fail "unknown escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
      || c = 'E'
    in
    while !pos < n && num_char s.[!pos] do advance () done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Jnum f
    | None -> fail "bad number"
  in
  let literal word v =
    if !pos + String.length word <= n
       && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Jobj [])
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); Jobj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); Jarr [])
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); Jarr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let obj_field name = function
  | Jobj fields -> List.assoc_opt name fields
  | _ -> None

(* --------------------- Evalpool trace under -j 4 --------------------- *)

let gene p = { Genome.g_pass = p; g_params = [| 0 |] }

let test_evalpool_trace_parses () =
  let json =
    with_tracing @@ fun () ->
    let pool =
      Evalpool.create ~jobs:4 ~cache:false ~canon:Genome.to_string
        ~compile:(fun g -> Ok g)
        ~key_of:Genome.to_string
        ~verify:(fun g -> String.length (Genome.to_string g))
        ~finish:(fun ~ev_index core -> (ev_index, core))
        ()
    in
    let tasks =
      Array.init 40 (fun i ->
          (i + 1, [ gene (Printf.sprintf "p%d" (i mod 5)) ]))
    in
    ignore (Evalpool.evaluate_batch pool tasks);
    Alcotest.(check bool) "raw events well-formed" true
      (well_formed (Trace.events ()));
    Trace.to_chrome_json ()
  in
  let parsed = parse_json json in
  let events =
    match obj_field "traceEvents" parsed with
    | Some (Jarr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "events present" true (events <> []);
  (* replay the B/E discipline from the *parsed* JSON: if concurrent
     domains corrupted the merge, pairing breaks here *)
  let stacks = Hashtbl.create 8 in
  let worker_tids = Hashtbl.create 8 in
  List.iter
    (fun ev ->
       let name =
         match obj_field "name" ev with Some (Jstr s) -> s | _ -> "?"
       in
       let tid =
         match obj_field "tid" ev with
         | Some (Jnum f) -> int_of_float f
         | _ -> Alcotest.fail "event without tid"
       in
       match obj_field "ph" ev with
       | Some (Jstr "B") ->
         if name = "evalpool:worker" then Hashtbl.replace worker_tids tid ();
         Hashtbl.replace stacks tid
           (name :: Option.value ~default:[] (Hashtbl.find_opt stacks tid))
       | Some (Jstr "E") ->
         (match Hashtbl.find_opt stacks tid with
          | Some (top :: rest) when top = name ->
            Hashtbl.replace stacks tid rest
          | _ -> Alcotest.fail ("unmatched E for " ^ name))
       | Some (Jstr "C") -> ()
       | _ -> Alcotest.fail "event without phase")
    events;
  Hashtbl.iter
    (fun tid stack ->
       if stack <> [] then
         Alcotest.fail (Printf.sprintf "unclosed span on tid %d" tid))
    stacks;
  Alcotest.(check bool) "at least 2 distinct worker domain ids" true
    (Hashtbl.length worker_tids >= 2);
  (* counters survive the round-trip as C events *)
  let counter name =
    List.find_opt
      (fun ev ->
         obj_field "name" ev = Some (Jstr name)
         && obj_field "ph" ev = Some (Jstr "C"))
      events
  in
  match counter "evalpool.tasks" with
  | Some ev ->
    (match obj_field "args" ev with
     | Some (Jobj [ ("value", Jnum v) ]) ->
       Alcotest.(check int) "task counter value" 40 (int_of_float v)
     | _ -> Alcotest.fail "counter without value args")
  | None -> Alcotest.fail "evalpool.tasks counter missing"

(* ------------------------- golden exporter -------------------------- *)

(* Deterministic scenario: fake 100 µs-tick clock, spans and metric names
   that exercise every escaping rule (quotes, backslashes, control
   characters, multibyte UTF-8). *)
let golden_scenario () =
  let t = ref 0.0 in
  Trace.set_clock (fun () ->
      let v = !t in
      t := v +. 1e-4;
      v);
  Trace.reset ();
  Trace.enable ();
  Trace.span ~cat:"demo" ~args:[ ("file", "a\\b"); ("note", "x\"y") ]
    "outer \xc2\xb5span"
    (fun () ->
       Trace.span "inner\nline" (fun () ->
           Trace.incr "demo.count";
           Trace.add "demo.count" 2;
           Trace.gauge "demo.ratio" 0.5);
       Trace.span "tab\tname" (fun () -> ()));
  Trace.incr "ctrl\x01name";
  let out = Trace.to_chrome_json () ^ "\n" in
  Trace.disable ();
  Trace.reset ();
  Trace.set_clock Unix.gettimeofday;
  Trace.reset ();
  out

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let golden_path () =
  if Sys.file_exists "golden/trace_golden.json" then
    "golden/trace_golden.json"
  else "test/golden/trace_golden.json"

let test_chrome_golden () =
  let out = golden_scenario () in
  (match Sys.getenv_opt "TRACE_GOLDEN_UPDATE" with
   | Some path ->
     let oc = open_out_bin path in
     output_string oc out;
     close_out oc;
     Printf.printf "golden fixture written to %s\n" path
   | None ->
     Alcotest.(check string) "exporter output matches committed fixture"
       (read_file (golden_path ())) out);
  (* and the golden bytes must themselves be parseable JSON *)
  match parse_json (String.trim out) with
  | Jobj _ -> ()
  | _ -> Alcotest.fail "golden trace is not a JSON object"

(* ------------------ end-to-end: traced search = search --------------- *)

let tiny_cfg =
  { Ga.quick_config with population = 8; generations = 4; max_identical = 30 }

let fingerprint (o : Pipeline.optimized) =
  (o.Pipeline.ga.Ga.best,
   o.Pipeline.ga.Ga.history,
   o.Pipeline.ga.Ga.evaluations,
   o.Pipeline.ga.Ga.halted_early,
   o.Pipeline.best_genome)

let test_traced_search_deterministic () =
  let app = Option.get (App.find "FFT") in
  let (t1, t4, cap) =
    with_tracing @@ fun () ->
    let cap = Option.get (Pipeline.capture_once ~seed:5 app) in
    let t1 =
      fingerprint (Pipeline.optimize ~seed:3 ~cfg:tiny_cfg ~jobs:1 app cap)
    in
    let t4 =
      fingerprint (Pipeline.optimize ~seed:3 ~cfg:tiny_cfg ~jobs:4 app cap)
    in
    let evs = Trace.events () in
    Alcotest.(check bool) "full pipeline trace well-formed" true
      (well_formed evs);
    let names = List.map (fun ev -> ev.Trace.ev_name) evs in
    let has name = List.mem name names in
    Alcotest.(check bool) "capture span" true (has "capture");
    Alcotest.(check bool) "interpreted replay span" true
      (has "replay:interpreter");
    Alcotest.(check bool) "at least one LIR pass span" true
      (List.exists
         (fun n -> String.length n > 5 && String.sub n 0 5 = "pass:")
         names);
    let worker_tids =
      List.sort_uniq compare
        (List.filter_map
           (fun ev ->
              if ev.Trace.ev_name = "evalpool:worker" then
                Some ev.Trace.ev_tid
              else None)
           evs)
    in
    Alcotest.(check bool) "parallel workers visible (>= 2 domain ids)" true
      (List.length worker_tids >= 2);
    (t1, t4, cap)
  in
  Alcotest.(check bool) "-j 1 = -j 4 under tracing" true (t1 = t4);
  (* tracing itself must not perturb the search *)
  let untraced =
    fingerprint (Pipeline.optimize ~seed:3 ~cfg:tiny_cfg ~jobs:1 app cap)
  in
  Alcotest.(check bool) "traced = untraced" true (t1 = untraced)

let () =
  Alcotest.run "trace"
    [ ("spans",
       [ Alcotest.test_case "basics" `Quick test_span_basics;
         Alcotest.test_case "exception safety" `Quick
           test_span_exception_safe;
         Alcotest.test_case "disabled is a no-op" `Quick
           test_disabled_is_noop ]);
      ("concurrency",
       [ Alcotest.test_case "4-domain trees well-formed" `Quick
           test_four_domain_trees_well_formed;
         Alcotest.test_case "counters sum across domains" `Quick
           test_counters_sum_across_domains;
         Alcotest.test_case "evalpool -j 4 trace parses" `Quick
           test_evalpool_trace_parses ]);
      ("exporter",
       [ Alcotest.test_case "chrome golden fixture" `Quick
           test_chrome_golden ]);
      ("pipeline",
       [ Alcotest.test_case "traced search deterministic" `Quick
           test_traced_search_deterministic ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest [ prop_tree_well_formed ]) ]
