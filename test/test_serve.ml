(* Tests for the multi-app serve scheduler: N concurrent searches over one
   shared domain pool must each produce exactly the digest a standalone
   [Pipeline.optimize] run produces, make progress concurrently with
   round-robin fairness, respect admission control and backpressure, keep
   tenant quarantine logs isolated, and survive a mid-serve kill via their
   per-job checkpoints. *)

module Pipeline = Repro_core.Pipeline
module Serve = Repro_core.Serve
module Checkpoint = Repro_core.Checkpoint
module Ga = Repro_search.Ga
module App = Repro_apps.Registry

let tiny_cfg =
  { Ga.quick_config with population = 8; generations = 4; max_identical = 30 }

let app name = Option.get (App.find name)

(* What [repro optimize APP --seed S] would produce, for digest parity. *)
let standalone name seed =
  let a = app name in
  let co = Option.get (Pipeline.capture_corpus ~seed ~k:1 a) in
  Pipeline.search_digest
    (Pipeline.optimize ~seed:(seed + 13) ~cfg:tiny_cfg
       ~quarantine:(Pipeline.create_quarantine_log ())
       ~corpus:co.Pipeline.co_entries a co.Pipeline.co_primary)

let fft_digest = lazy (standalone "FFT" 5)
let bubble_digest = lazy (standalone "BubbleSort" 7)

let requests () =
  [ Serve.request ~seed:5 ~cfg:tiny_cfg (app "FFT");
    Serve.request ~seed:7 ~cfg:tiny_cfg (app "BubbleSort") ]

let with_serve ?jobs ?queue_capacity ?abort_after ~max_active f =
  let t = Serve.create ?jobs ?queue_capacity ?abort_after ~max_active () in
  Fun.protect ~finally:(fun () -> Serve.shutdown t) (fun () -> f t)

let digests_of t =
  List.map
    (fun r ->
       match r.Serve.rp_outcome, r.Serve.rp_digest with
       | `Finished, Some d -> d
       | `Finished, None -> Alcotest.fail "finished without a digest"
       | (`Failed why), _ -> Alcotest.fail ("job failed: " ^ why)
       | `Unstarted, _ -> Alcotest.fail "job never started")
    (Serve.reports t)

(* -------------------- concurrent digests = standalone ----------------- *)

let test_serve_matches_standalone ~jobs () =
  with_serve ~jobs ~max_active:2 @@ fun t ->
  List.iter (fun r -> ignore (Serve.submit t r)) (requests ());
  Serve.drive t;
  Alcotest.(check (list string)) "both tenants reproduce standalone digests"
    [ Lazy.force fft_digest; Lazy.force bubble_digest ]
    (digests_of t);
  let s = Serve.stats t in
  Alcotest.(check bool) "apps actually ran concurrently" true
    (s.Serve.st_concurrent_rounds >= 2);
  Alcotest.(check int) "peak active" 2 s.Serve.st_peak_active;
  Alcotest.(check (float 0.0)) "round-robin fairness is exact" 0.0
    s.Serve.st_fairness_spread

(* ---------------------- admission and backpressure -------------------- *)

let test_admission_control () =
  with_serve ~max_active:1 ~queue_capacity:1 @@ fun t ->
  let r1 = Serve.request ~seed:5 ~cfg:tiny_cfg (app "FFT") in
  let r2 = Serve.request ~seed:7 ~cfg:tiny_cfg (app "BubbleSort") in
  let r3 = Serve.request ~seed:9 ~cfg:tiny_cfg (app "FFT") in
  Alcotest.(check bool) "first fills the slot" true
    (Serve.submit t r1 = `Admitted);
  Alcotest.(check bool) "second queues" true (Serve.submit t r2 = `Queued 1);
  Alcotest.(check bool) "third bounces off the full queue" true
    (Serve.submit t r3 = `Rejected);
  Serve.drive t;
  let finished =
    List.filter (fun r -> r.Serve.rp_outcome = `Finished) (Serve.reports t)
  in
  Alcotest.(check int) "admitted and queued jobs both finish" 2
    (List.length finished);
  let s = Serve.stats t in
  Alcotest.(check int) "rejection counted" 1 s.Serve.st_rejected;
  Alcotest.(check int) "never more than max_active" 1 s.Serve.st_peak_active;
  (* serialized tenants still match their standalone digests *)
  Alcotest.(check (list (option string))) "digests intact"
    [ Some (Lazy.force fft_digest); Some (Lazy.force bubble_digest); None ]
    (List.map (fun r -> r.Serve.rp_digest) (Serve.reports t))

(* ------------------------ kill mid-serve, resume ---------------------- *)

let test_serve_kill_resume () =
  let f1 = Filename.temp_file "repro_serve_a" ".bin" in
  let f2 = Filename.temp_file "repro_serve_b" ".bin" in
  Sys.remove f1;
  Sys.remove f2;
  let rm f = if Sys.file_exists f then Sys.remove f in
  Fun.protect ~finally:(fun () -> rm f1; rm f2) @@ fun () ->
  let reqs () =
    [ Serve.request ~seed:5 ~cfg:tiny_cfg ~checkpoint:f1 (app "FFT");
      Serve.request ~seed:7 ~cfg:tiny_cfg ~checkpoint:f2 (app "BubbleSort") ]
  in
  (* process 1: killed after 5 live batches across the two tenants *)
  (match
     with_serve ~abort_after:5 ~max_active:2 @@ fun t ->
     List.iter (fun r -> ignore (Serve.submit t r)) (reqs ());
     Serve.drive t
   with
   | () -> Alcotest.fail "serve should have been killed"
   | exception Checkpoint.Injected_abort -> ());
  Alcotest.(check bool) "both checkpoints written" true
    (Sys.file_exists f1 && Sys.file_exists f2);
  (* process 2: same requests, same files — resumes and finishes *)
  with_serve ~max_active:2 @@ fun t ->
  List.iter (fun r -> ignore (Serve.submit t r)) (reqs ());
  Serve.drive t;
  Alcotest.(check (list string)) "resumed digests = standalone"
    [ Lazy.force fft_digest; Lazy.force bubble_digest ]
    (digests_of t);
  List.iter
    (fun r ->
       Alcotest.(check bool)
         (r.Serve.rp_app ^ " replayed its journal") true
         (r.Serve.rp_replayed_batches > 0);
       Alcotest.(check bool)
         (r.Serve.rp_app ^ " clean resume, no warnings") true
         (r.Serve.rp_warnings = []))
    (Serve.reports t)

(* ----------------------- tenant quarantine isolation ------------------ *)

let test_tenant_quarantine_isolated () =
  let before = List.length (Pipeline.quarantine_summary ()) in
  with_serve ~max_active:2 @@ fun t ->
  List.iter (fun r -> ignore (Serve.submit t r)) (requests ());
  Serve.drive t;
  Alcotest.(check int) "global log untouched by tenants" before
    (List.length (Pipeline.quarantine_summary ()));
  (* a tenant with a corrupt checkpoint quarantines into its own log *)
  let bad = Filename.temp_file "repro_serve_bad" ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove bad) @@ fun () ->
  Out_channel.with_open_bin bad (fun oc ->
      Out_channel.output_string oc "garbage");
  with_serve ~max_active:1 @@ fun t2 ->
  ignore
    (Serve.submit t2
       (Serve.request ~seed:5 ~cfg:tiny_cfg ~checkpoint:bad (app "FFT")));
  Serve.drive t2;
  (match Serve.reports t2 with
   | [ r ] ->
     Alcotest.(check bool) "job still finishes" true
       (r.Serve.rp_outcome = `Finished);
     Alcotest.(check bool) "damage warned" true (r.Serve.rp_warnings <> []);
     Alcotest.(check int) "quarantined in the tenant's log" 1
       r.Serve.rp_quarantined
   | _ -> Alcotest.fail "expected one report");
  Alcotest.(check (list string)) "and visible via quarantine_of"
    [ "checkpoint:" ^ bad ]
    (List.map
       (fun e -> e.Pipeline.q_binary)
       (Serve.quarantine_of t2 "FFT"));
  Alcotest.(check int) "global log still untouched" before
    (List.length (Pipeline.quarantine_summary ()))

let () =
  Alcotest.run "serve"
    [ ("scheduler",
       [ Alcotest.test_case "2 tenants = standalone (j1)" `Quick
           (test_serve_matches_standalone ~jobs:1);
         Alcotest.test_case "2 tenants = standalone (shared pool, j4)"
           `Quick (test_serve_matches_standalone ~jobs:4);
         Alcotest.test_case "admission control + backpressure" `Quick
           test_admission_control ]);
      ("resume",
       [ Alcotest.test_case "kill mid-serve, resume both tenants" `Quick
           test_serve_kill_resume ]);
      ("quarantine",
       [ Alcotest.test_case "tenant logs isolated" `Quick
           test_tenant_quarantine_isolated ]) ]
