(* Tests for the compiler stack: HGraph building, translation, passes,
   pipelines, and the LIR executor — including differential tests that pin
   compiled semantics to the interpreter. *)

open Repro_lir
module Hir = Repro_hgraph.Hir
module Build = Repro_hgraph.Build
module Android = Repro_hgraph.Android
module T = Repro_hgraph.Transforms
module B = Repro_dex.Bytecode
module Vm = Repro_vm
module Cfg = Repro_util.Cfg

let compile_src src = Repro_dex.Lower.compile src

let all_mids dx =
  Array.to_list (Array.map (fun m -> m.B.cm_id) dx.B.dx_methods)

(* Run fully interpreted. *)
let run_interp dx =
  let ctx = Vm.Image.build ~seed:7 dx in
  Vm.Interp.install ctx;
  let r = Vm.Interp.run_main ctx in
  (r, Buffer.contents ctx.Vm.Exec_ctx.io, ctx.Vm.Exec_ctx.cycles)

(* Run with a binary installed (mixed mode). *)
let run_binary dx binary =
  let ctx = Vm.Image.build ~seed:7 dx in
  Exec.install ctx binary;
  let r = Vm.Interp.run_main ctx in
  (r, Buffer.contents ctx.Vm.Exec_ctx.io, ctx.Vm.Exec_ctx.cycles)

let value_opt = Alcotest.testable
    (fun fmt v ->
       Format.pp_print_string fmt
         (match v with None -> "none" | Some v -> Vm.Value.to_string v))
    (fun a b ->
       match a, b with
       | None, None -> true
       | Some a, Some b -> Vm.Value.equal a b
       | _ -> false)

(* A program exercising most of the IR: loops, arrays, virtual calls,
   floats, natives, statics, recursion. *)
let big_src = {|
class Shape {
  int kind;
  float area() { return 0.0; }
}
class Circle extends Shape {
  float r;
  void init(float ar) { r = ar; kind = 1; }
  float area() { return 3.14159 * r * r; }
}
class Square extends Shape {
  float s;
  void init(float as) { s = as; kind = 2; }
  float area() { return s * s; }
}
class Main {
  static int rounds = 3;
  static float work(Shape[] shapes) {
    float total = 0.0;
    for (int k = 0; k < rounds; k = k + 1) {
      for (int i = 0; i < shapes.length; i = i + 1) {
        total = total + shapes[i].area();
      }
    }
    return total;
  }
  static int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
  static int main() {
    Shape[] shapes = new Shape[20];
    for (int i = 0; i < shapes.length; i = i + 1) {
      if (i % 3 == 0) { shapes[i] = new Square(2.0); }
      else { shapes[i] = new Circle(1.0); }
    }
    float t = work(shapes) + Math.sqrt(81.0);
    int acc = fib(12) + (int) t;
    int[] xs = new int[64];
    for (int i = 0; i < 64; i = i + 1) { xs[i] = i * 7 % 13; }
    int s = 0;
    for (int i = 0; i < 64; i = i + 1) { s = s + xs[i]; }
    return acc * 1000 + s;
  }
}
|}

(* ---------------------------- build/translate ----------------------- *)

let test_build_rejects_try () =
  let dx =
    compile_src
      "class Main { static int main() { try { return 1; } catch (int e) { return e; } } }"
  in
  (try
     ignore (Build.func dx dx.B.dx_main);
     Alcotest.fail "expected Uncompilable"
   with Build.Uncompilable _ -> ())

let test_build_loop_has_suspend_check () =
  let dx =
    compile_src
      "class Main { static int main() {
         int s = 0;
         for (int i = 0; i < 10; i = i + 1) { s = s + i; }
         return s;
       } }"
  in
  let f = Build.func dx dx.B.dx_main in
  let count = ref 0 in
  Hir.iter_blocks f (fun _ b ->
      List.iter (function Hir.SuspendCheck -> incr count | _ -> ()) b.Hir.insns);
  Alcotest.(check int) "one suspend check" 1 !count

let test_translate_expands_checks () =
  let dx =
    compile_src
      "class Main { static int main() {
         int[] a = new int[4];
         a[2] = 5;
         return a[2];
       } }"
  in
  let f = Translate.func dx (Build.func dx dx.B.dx_main) in
  let guards = ref 0 and composite = ref 0 in
  Hir.iter_blocks f (fun _ b ->
      List.iter
        (function
          | Hir.GuardNull _ | Hir.GuardBounds _ | Hir.GuardDivZero _ -> incr guards
          | Hir.ALoadC _ | Hir.AStoreC _ | Hir.ArrLenC _ | Hir.IGetC _
          | Hir.IPutC _ -> incr composite
          | _ -> ())
        b.Hir.insns);
  Alcotest.(check int) "no composite ops left" 0 !composite;
  Alcotest.(check bool) "guards present" true (!guards >= 4)

let test_infer_kinds () =
  let dx =
    compile_src
      "class Main { static float main() {
         float f = 2.5;
         int i = 3;
         return f * 2.0 + i;
       } }"
  in
  let f = Build.func dx dx.B.dx_main in
  let kinds = Translate.infer_kinds dx f in
  (* register 0 is the first local (f): float *)
  Alcotest.(check bool) "some float reg" true
    (Array.exists (fun k -> k = B.Kfloat) kinds)

(* ----------------------------- transforms --------------------------- *)

let loop_func () =
  let dx =
    compile_src
      "class Main { static int main() {
         int s = 0;
         int c = 3 * 4;
         for (int i = 0; i < 100; i = i + 1) { s = s + c * 2; }
         return s;
       } }"
  in
  (dx, Translate.func dx (Build.func dx dx.B.dx_main))

let count_insns f pred =
  let n = ref 0 in
  Hir.iter_blocks f (fun _ b ->
      List.iter (fun i -> if pred i then incr n) b.Hir.insns);
  !n

let test_const_fold () =
  let _, f = loop_func () in
  let f = T.const_fold f in
  (* 3 * 4 must be folded away *)
  let muls = count_insns f (function
      | Hir.Binop (Repro_dex.Ast.Mul, _, _, _) -> true
      | _ -> false)
  in
  ignore muls;
  let consts12 = count_insns f (function
      | Hir.Const (_, B.Cint 12) -> true
      | _ -> false)
  in
  Alcotest.(check bool) "12 materialized" true (consts12 >= 1)

let test_dce_removes_dead () =
  let dx =
    compile_src
      "class Main { static int main() {
         int dead = 5 * 1000;
         int live = 2;
         return live;
       } }"
  in
  let f = Translate.func dx (Build.func dx dx.B.dx_main) in
  let before = Hir.size f in
  let f = T.dce f in
  Alcotest.(check bool) "smaller after dce" true (Hir.size f < before)

let test_licm_hoists () =
  let _, f = loop_func () in
  let g = Hir.cfg f in
  let in_loop_before =
    let loops = Cfg.loops g in
    List.fold_left
      (fun acc l ->
         acc
         + List.fold_left
             (fun a bid ->
                a
                + count_insns
                    { f with Hir.f_blocks = Hashtbl.create 1 }
                    (fun _ -> false)
                + List.length (Hir.block f bid).Hir.insns)
             0 l.Cfg.body)
      0 loops
  in
  ignore in_loop_before;
  let f' = T.licm f in
  (* the loop-invariant c * 2 should move out: loop body shrinks *)
  let loop_insns fn =
    let g = Hir.cfg fn in
    List.fold_left
      (fun acc l ->
         acc
         + List.fold_left
             (fun a bid -> a + List.length (Hir.block fn bid).Hir.insns)
             0 l.Cfg.body)
      0 (Cfg.loops g)
  in
  Alcotest.(check bool) "loop body shrank" true (loop_insns f' < loop_insns f)

let test_simplify_cfg_merges () =
  let _, f = loop_func () in
  let f' = T.simplify_cfg f in
  Alcotest.(check bool) "fewer or equal blocks" true
    (Hashtbl.length f'.Hir.f_blocks <= Hashtbl.length f.Hir.f_blocks)

(* ------------------------------ passes ------------------------------ *)

let test_catalog_names_unique () =
  let names = List.map (fun pass -> pass.Passes.name) Passes.catalog in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_pass_param_validation () =
  let dx, f = loop_func () in
  let env = Compile.pass_env dx in
  let unroll = Passes.find "unroll" in
  (try
     ignore (Passes.run env unroll [| 99; 48; 0 |] f);
     Alcotest.fail "expected Bad_param"
   with Passes.Bad_param _ -> ());
  (try
     ignore (Passes.run env unroll [| 4 |] f);
     Alcotest.fail "expected Bad_param (arity)"
   with Passes.Bad_param _ -> ())

let test_unroll_duplicates_suspend_checks () =
  let dx, f = loop_func () in
  ignore dx;
  let checks f =
    count_insns f (function Hir.SuspendCheck -> true | _ -> false)
  in
  let before = checks f in
  let f4 = Passes.(run (Compile.pass_env dx) (find "unroll") [| 4; 64; 0 |] f) in
  Alcotest.(check int) "4x checks" (before * 4) (checks f4);
  let deduped = Passes.(run (Compile.pass_env dx) (find "gc-check-elim") [||] f4) in
  Alcotest.(check int) "back to one per latch" before (checks deduped)

let test_if_convert_forms_selects () =
  let dx =
    compile_src
      "class Main { static int main() {
         int best = 0;
         for (int i = 0; i < 200; i = i + 1) {
           int v = i * 7 % 31;
           if (v > best) { best = v; }
         }
         return best;
       } }"
  in
  let f = Translate.func dx (Build.func dx dx.B.dx_main) in
  let f' = Passes.(run (Compile.pass_env dx) (find "if-convert") [||] f) in
  let selects =
    count_insns f' (function Hir.Select _ -> true | _ -> false)
  in
  Alcotest.(check bool) "select formed" true (selects >= 1);
  (* and it must still compute the right answer, faster *)
  let ri, _, _ = run_interp dx in
  let b_plain = Compile.llvm_binary dx Pipelines.o1 (all_mids dx) in
  let b_ifc =
    Compile.llvm_binary dx (Pipelines.o1 @ [ ("if-convert", [||]) ])
      (all_mids dx)
  in
  let r1, _, c1 = run_binary dx b_plain in
  let r2, _, c2 = run_binary dx b_ifc in
  Alcotest.check value_opt "plain correct" ri r1;
  Alcotest.check value_opt "if-converted correct" ri r2;
  Alcotest.(check bool) "mispredictions gone: faster" true (c2 < c1)

let test_guard_hoist_moves_guards_out () =
  let dx =
    compile_src
      "class Main { static float main() {
         float[] x = new float[100];
         float s = 0.0;
         for (int p = 0; p < 20; p = p + 1) {
           for (int i = 0; i < x.length; i = i + 1) { s = s + x[i]; }
         }
         return s;
       } }"
  in
  let f = Translate.func dx (Build.func dx dx.B.dx_main) in
  let env = Compile.pass_env dx in
  let f' = Passes.(run env (find "guard-hoist") [||] f) in
  (* guards moved out of loop bodies: executing costs fewer cycles *)
  let run g =
    let ctx = Vm.Image.build dx in
    Exec.install ctx (Binary.create [ g ]);
    let r = Vm.Interp.run_main ctx in
    (r, ctx.Vm.Exec_ctx.cycles)
  in
  let r1, c1 = run f in
  let r2, c2 = run f' in
  Alcotest.check value_opt "same result" r1 r2;
  Alcotest.(check bool) "fewer cycles" true (c2 < c1)

let test_sink_preserves_semantics () =
  let dx = compile_src big_src in
  let ri, io_i, _ = run_interp dx in
  let binary =
    Compile.llvm_binary dx
      [ ("constfold", [||]); ("sink", [||]); ("dce", [||]) ]
      (all_mids dx)
  in
  let rb, io_b, _ = run_binary dx binary in
  Alcotest.check value_opt "result" ri rb;
  Alcotest.(check string) "io" io_i io_b

let test_bce_removes_guards () =
  let dx =
    compile_src
      "class Main { static int main() {
         int[] a = new int[50];
         int s = 0;
         for (int i = 0; i < a.length; i = i + 1) { s = s + a[i]; }
         return s;
       } }"
  in
  let f = Translate.func dx (Build.func dx dx.B.dx_main) in
  let bounds f =
    count_insns f (function Hir.GuardBounds _ -> true | _ -> false)
  in
  let before = bounds f in
  let f' = Passes.(run (Compile.pass_env dx) (find "bce") [||] f) in
  Alcotest.(check bool) "guards removed" true (bounds f' < before)

(* --------------------- differential: compiled = interp -------------- *)

let check_same_result ?profile src spec label =
  let dx = compile_src src in
  let ri, io_i, cyc_i = run_interp dx in
  let binary = Compile.llvm_binary ?profile dx spec (all_mids dx) in
  let rb, io_b, cyc_b = run_binary dx binary in
  Alcotest.check value_opt (label ^ ": result") ri rb;
  Alcotest.(check string) (label ^ ": io") io_i io_b;
  Alcotest.(check bool) (label ^ ": compiled faster") true (cyc_b < cyc_i)

let test_android_binary_matches_interp () =
  let dx = compile_src big_src in
  let ri, io_i, cyc_i = run_interp dx in
  let binary = Compile.android_binary dx (all_mids dx) in
  let rb, io_b, cyc_b = run_binary dx binary in
  Alcotest.check value_opt "result" ri rb;
  Alcotest.(check string) "io" io_i io_b;
  Alcotest.(check bool) "compiled faster than interpreted" true (cyc_b < cyc_i)

let test_o1_matches_interp () = check_same_result big_src Pipelines.o1 "O1"
let test_o2_matches_interp () = check_same_result big_src Pipelines.o2 "O2"
let test_o3_matches_interp () = check_same_result big_src Pipelines.o3 "O3"

let test_o2_not_slower_than_o0 () =
  let dx = compile_src big_src in
  let b0 = Compile.llvm_binary dx Pipelines.o0 (all_mids dx) in
  let b2 = Compile.llvm_binary dx Pipelines.o2 (all_mids dx) in
  let _, _, c0 = run_binary dx b0 in
  let _, _, c2 = run_binary dx b2 in
  Alcotest.(check bool) "O2 <= O0 cycles" true (c2 <= c0)

(* every safe pass individually preserves semantics on the big program *)
let test_each_safe_pass_preserves_semantics () =
  let dx = compile_src big_src in
  let ri, io_i, _ = run_interp dx in
  List.iter
    (fun pass ->
       if pass.Passes.safe then begin
         let defaults =
           Array.of_list
             (List.map (fun pr -> pr.Passes.pdefault) pass.Passes.params)
         in
         let spec = [ (pass.Passes.name, defaults) ] in
         let binary = Compile.llvm_binary dx spec (all_mids dx) in
         let rb, io_b, _ = run_binary dx binary in
         Alcotest.check value_opt (pass.Passes.name ^ ": result") ri rb;
         Alcotest.(check string) (pass.Passes.name ^ ": io") io_i io_b
       end)
    Passes.catalog

(* random safe-pass sequences preserve semantics *)
let prop_random_safe_sequences =
  QCheck.Test.make ~name:"random safe sequences preserve semantics" ~count:20
    QCheck.(list_of_size Gen.(int_range 1 12) (int_bound 1000))
    (fun choices ->
       let dx = compile_src big_src in
       let ri, io_i, _ = run_interp dx in
       let safe = List.filter (fun pass -> pass.Passes.safe) Passes.catalog in
       let spec =
         List.map
           (fun c ->
              let pass = List.nth safe (c mod List.length safe) in
              let defaults =
                Array.of_list
                  (List.map (fun pr -> pr.Passes.pdefault) pass.Passes.params)
              in
              (pass.Passes.name, defaults))
           choices
       in
       match Compile.llvm_binary dx spec (all_mids dx) with
       | binary ->
         let rb, io_b, _ = run_binary dx binary in
         (match ri, rb with
          | Some a, Some b -> Vm.Value.equal a b && io_i = io_b
          | None, None -> io_i = io_b
          | _ -> false)
       | exception Compile.Compile_timeout -> true (* legitimate outcome *))

(* unsafe passes CAN change behaviour (fast-math on a division) *)
let test_fast_math_changes_bits () =
  (* 5.0 / 3.0 and 5.0 * (1.0 / 3.0) differ in the last ulp *)
  let src =
    "class Main { static float main() {
       float five = 5.0;
       return five / 3.0;
     } }"
  in
  let dx = compile_src src in
  let ri, _, _ = run_interp dx in
  let binary = Compile.llvm_binary dx [ ("fast-math", [| 1; 1 |]) ] (all_mids dx) in
  let rb, _, _ = run_binary dx binary in
  match ri, rb with
  | Some (Vm.Value.Vfloat a), Some (Vm.Value.Vfloat b) ->
    Alcotest.(check bool) "bits differ" true
      (Int64.bits_of_float a <> Int64.bits_of_float b)
  | _ -> Alcotest.fail "expected float results"

let test_unsafe_div_wrong_for_negatives () =
  let src =
    "class Main { static int main() {
       int x = 0 - 7;
       int four = 4;
       return x / four;
     } }"
  in
  let dx = compile_src src in
  let ri, _, _ = run_interp dx in
  (* constfold first would hide it; apply SR alone: needs the divisor as a
     known constant, so give it one through a static *)
  let binary =
    Compile.llvm_binary dx [ ("constfold", [||]); ("copyprop", [||]);
                             ("unsafe-div-lower", [||]) ] (all_mids dx)
  in
  let rb, _, _ = run_binary dx binary in
  Alcotest.(check bool) "results differ (or equal if pass missed)" true
    (ri = Some (Vm.Value.Vint (-1))
     && (rb = Some (Vm.Value.Vint (-2)) || rb = Some (Vm.Value.Vint (-1))))

let test_unsafe_bce_can_crash () =
  let src =
    "class Main {
       static int get(int[] a, int i) { return a[i]; }
       static int main() {
         int[] a = new int[4];
         int bad = 400000;
         try { return get(a, bad); } catch (int e) { return e; }
       }
     }"
  in
  let dx = compile_src src in
  (* interpreted: caught out-of-bounds exception *)
  let ri, _, _ = run_interp dx in
  Alcotest.check value_opt "interp catches OOB"
    (Some (Vm.Value.Vint Vm.Exec_ctx.exc_out_of_bounds)) ri;
  (* compiled without bounds guards: wild read, segfault or garbage *)
  let binary = Compile.llvm_binary dx [ ("unsafe-bce", [||]) ] (all_mids dx) in
  let ctx = Vm.Image.build ~seed:7 dx in
  Exec.install ctx binary;
  (match Vm.Interp.run_main ctx with
   | _ -> ()  (* silent garbage is possible *)
   | exception Exec.Segfault _ -> ()  (* crash is expected for a wild read *))

let test_compile_timeout_on_explosion () =
  let dx = compile_src big_src in
  let spec =
    List.init 8 (fun _ -> ("unroll", [| 16; 4000; 1 |]))
    @ [ ("inline", [| 400 |]) ]
  in
  (try
     ignore (Compile.llvm_binary dx spec (all_mids dx));
     Alcotest.fail "expected Compile_timeout"
   with Compile.Compile_timeout -> ())

let test_unknown_pass_is_compile_error () =
  let dx = compile_src big_src in
  (try
     ignore (Compile.llvm_binary dx [ ("magic", [||]) ] (all_mids dx));
     Alcotest.fail "expected Compile_error"
   with Compile.Compile_error _ -> ())

let test_devirt_speeds_up_with_profile () =
  let src = {|
class A { int f() { return 1; } }
class B extends A { int f() { return 2; } }
class Main {
  static int main() {
    A x = new B();
    int s = 0;
    for (int i = 0; i < 3000; i = i + 1) { s = s + x.f(); }
    return s;
  }
}
|} in
  let dx = compile_src src in
  let ri, _, _ = run_interp dx in
  (* collect a dispatch profile through an interpreted run (as the
     interpreted replay would) *)
  let profile_tbl = Hashtbl.create 8 in
  let ctx = Vm.Image.build ~seed:7 dx in
  ctx.Vm.Exec_ctx.record_vcall <-
    Some (fun site cid ->
        let key = (site, cid) in
        Hashtbl.replace profile_tbl key
          (1 + Option.value ~default:0 (Hashtbl.find_opt profile_tbl key)));
  Vm.Interp.install ctx;
  ignore (Vm.Interp.run_main ctx);
  let profile site =
    Hashtbl.fold
      (fun (s, cid) n acc -> if s = site then (cid, n) :: acc else acc)
      profile_tbl []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let spec_plain = Pipelines.o2 in
  let spec_devirt =
    Pipelines.o2 @ [ ("devirtualize", [| 90 |]); ("inline", [| 60 |]);
                     ("dce", [||]) ]
  in
  let b_plain = Compile.llvm_binary ~profile dx spec_plain (all_mids dx) in
  let b_devirt = Compile.llvm_binary ~profile dx spec_devirt (all_mids dx) in
  let r1, _, c_plain = run_binary dx b_plain in
  let r2, _, c_devirt = run_binary dx b_devirt in
  Alcotest.check value_opt "plain correct" ri r1;
  Alcotest.check value_opt "devirt correct" ri r2;
  Alcotest.(check bool) "devirt faster" true (c_devirt < c_plain)

let test_jni_to_intrinsic_speeds_up () =
  let src =
    "class Main { static float main() {
       float s = 0.0;
       for (int i = 0; i < 2000; i = i + 1) { s = s + Math.sqrt(s + 2.0); }
       return s;
     } }"
  in
  let dx = compile_src src in
  let ri, _, _ = run_interp dx in
  let b1 = Compile.llvm_binary dx Pipelines.o2 (all_mids dx) in
  let b2 =
    Compile.llvm_binary dx (Pipelines.o2 @ [ ("jni-to-intrinsic", [||]) ])
      (all_mids dx)
  in
  let r1, _, c1 = run_binary dx b1 in
  let r2, _, c2 = run_binary dx b2 in
  Alcotest.check value_opt "o2 correct" ri r1;
  Alcotest.check value_opt "intrinsic correct" ri r2;
  Alcotest.(check bool) "intrinsics faster" true (c2 < c1)

(* ------------- pressure cache (Evalpool data-race regression) -------- *)

(* Binary.create must precompute every function's register-pressure cache:
   the executor used to fill it lazily, which raced when Evalpool worker
   domains shared one binary. *)
let test_binary_precomputes_pressure () =
  let dx = compile_src big_src in
  let binary = Compile.android_binary dx (all_mids dx) in
  List.iter
    (fun mid ->
       match Binary.find binary mid with
       | Some f ->
         Alcotest.(check bool)
           (Printf.sprintf "pressure cached for mid %d" mid)
           true (f.Hir.f_pressure <> None)
       | None -> ())
    (Binary.mids binary)

let test_executor_never_fills_pressure () =
  (* a func that bypasses Binary.create keeps f_pressure = None across a
     run: the executor recomputes instead of mutating the shared record *)
  let dx =
    compile_src
      "class Main { static int main() {
         int s = 0;
         for (int i = 0; i < 10; i = i + 1) { s = s + i; }
         return s;
       } }"
  in
  let f = Translate.func dx (Build.func dx dx.B.dx_main) in
  f.Hir.f_pressure <- None;
  let ctx = Vm.Image.build ~seed:7 dx in
  Vm.Interp.install ctx;
  let r = Exec.run_func ctx f [] in
  Alcotest.(check value_opt) "loop result" (Some (Vm.Value.Vint 45)) r;
  Alcotest.(check bool) "executor left the cache alone" true
    (f.Hir.f_pressure = None)

let test_pressure_safe_across_domains () =
  (* hammer: four domains execute the same binary concurrently; results
     must agree with the sequential run (no torn pressure cache) *)
  let dx = compile_src big_src in
  let binary = Compile.android_binary dx (all_mids dx) in
  let expected = run_binary dx binary in
  let domains =
    List.init 4 (fun _ -> Domain.spawn (fun () -> run_binary dx binary))
  in
  List.iter
    (fun d ->
       let r, io, cycles = Domain.join d in
       let er, eio, ecycles = expected in
       Alcotest.(check value_opt) "same return" er r;
       Alcotest.(check string) "same io" eio io;
       Alcotest.(check int) "same cycles" ecycles cycles)
    domains

let () =
  Alcotest.run "lir"
    [ ("build",
       [ Alcotest.test_case "rejects try" `Quick test_build_rejects_try;
         Alcotest.test_case "suspend checks" `Quick test_build_loop_has_suspend_check ]);
      ("translate",
       [ Alcotest.test_case "expands checks" `Quick test_translate_expands_checks;
         Alcotest.test_case "infer kinds" `Quick test_infer_kinds ]);
      ("transforms",
       [ Alcotest.test_case "const fold" `Quick test_const_fold;
         Alcotest.test_case "dce" `Quick test_dce_removes_dead;
         Alcotest.test_case "licm hoists" `Quick test_licm_hoists;
         Alcotest.test_case "simplify cfg" `Quick test_simplify_cfg_merges ]);
      ("passes",
       [ Alcotest.test_case "catalog unique" `Quick test_catalog_names_unique;
         Alcotest.test_case "param validation" `Quick test_pass_param_validation;
         Alcotest.test_case "unroll + gc-check-elim" `Quick
           test_unroll_duplicates_suspend_checks;
         Alcotest.test_case "bce" `Quick test_bce_removes_guards;
         Alcotest.test_case "if-convert" `Quick test_if_convert_forms_selects;
         Alcotest.test_case "guard-hoist" `Quick test_guard_hoist_moves_guards_out;
         Alcotest.test_case "sink" `Quick test_sink_preserves_semantics ]);
      ("differential",
       [ Alcotest.test_case "android = interp" `Quick test_android_binary_matches_interp;
         Alcotest.test_case "O1 = interp" `Quick test_o1_matches_interp;
         Alcotest.test_case "O2 = interp" `Quick test_o2_matches_interp;
         Alcotest.test_case "O3 = interp" `Quick test_o3_matches_interp;
         Alcotest.test_case "O2 <= O0" `Quick test_o2_not_slower_than_o0;
         Alcotest.test_case "each safe pass" `Slow test_each_safe_pass_preserves_semantics;
         QCheck_alcotest.to_alcotest prop_random_safe_sequences ]);
      ("unsafe",
       [ Alcotest.test_case "fast-math changes bits" `Quick test_fast_math_changes_bits;
         Alcotest.test_case "unsafe div" `Quick test_unsafe_div_wrong_for_negatives;
         Alcotest.test_case "unsafe bce crash" `Quick test_unsafe_bce_can_crash;
         Alcotest.test_case "compile timeout" `Quick test_compile_timeout_on_explosion;
         Alcotest.test_case "unknown pass" `Quick test_unknown_pass_is_compile_error ]);
      ("profile-guided",
       [ Alcotest.test_case "devirtualize" `Quick test_devirt_speeds_up_with_profile;
         Alcotest.test_case "jni-to-intrinsic" `Quick test_jni_to_intrinsic_speeds_up ]);
      ("pressure-cache",
       [ Alcotest.test_case "binary precomputes" `Quick test_binary_precomputes_pressure;
         Alcotest.test_case "executor read-only" `Quick test_executor_never_fills_pressure;
         Alcotest.test_case "cross-domain" `Quick test_pressure_safe_across_domains ]) ]
