(* Tests for the sampling profiler, Algorithm 1 and the code breakdown. *)

module App = Repro_apps.Registry
module B = Repro_dex.Bytecode
module Vm = Repro_vm
module Profile = Repro_profiler.Profile
module Regions = Repro_profiler.Regions
module Breakdown = Repro_profiler.Breakdown

let compile = Repro_dex.Lower.compile

let src_with_io_and_pure = {|
class Pure {
  static int spin(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + i * i % 7; }
    return s;
  }
}
class Noisy {
  static int loud(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + Sys.rand(3); }
    return s;
  }
}
class Thrower {
  static int maybe(int n) {
    if (n < 0) { throw 5; }
    return n;
  }
}
class Catcher {
  static int guard(int n) {
    try { return Thrower.maybe(n); } catch (int e) { return e; }
  }
}
class Main {
  static int main() {
    int s = Pure.spin(20000) + Noisy.loud(10) + Catcher.guard(3);
    Sys.print(s);
    return s;
  }
}
|}

let test_replayability_rules () =
  let dx = compile src_with_io_and_pure in
  let mid cls name = (Option.get (B.find_method dx cls name)).B.cm_id in
  Alcotest.(check bool) "pure is replayable" true
    (Regions.replayable dx (mid "Pure" "spin"));
  Alcotest.(check bool) "rand is not" false
    (Regions.replayable dx (mid "Noisy" "loud"));
  Alcotest.(check bool) "throw is not" false
    (Regions.replayable dx (mid "Thrower" "maybe"));
  Alcotest.(check bool) "try/catch is not" false
    (Regions.replayable dx (mid "Catcher" "guard"));
  Alcotest.(check bool) "main (print) is not" false
    (Regions.replayable dx dx.B.dx_main)

let test_region_replayable_is_transitive () =
  let dx = compile {|
class Inner { static int bad(int n) { return Sys.rand(n); } }
class Outer {
  static int calls_bad(int n) { return Inner.bad(n) + 1; }
  static int fine(int n) { return n * 2; }
}
class Main { static int main() { Sys.print(1); return Outer.calls_bad(3) + Outer.fine(4); } }
|} in
  let mid cls name = (Option.get (B.find_method dx cls name)).B.cm_id in
  Alcotest.(check bool) "callee taints region" false
    (Regions.region_replayable dx (mid "Outer" "calls_bad"));
  Alcotest.(check bool) "clean region ok" true
    (Regions.region_replayable dx (mid "Outer" "fine"))

let test_compilable_region_cuts_at_uncompilable () =
  let dx = compile {|
class Heavy {
  static int helper(int n) { try { return n; } catch (int e) { return e; } }
  static int work(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + i; }
    return s;
  }
  static int top(int n) { return work(n) + helper(n); }
}
class Main { static int main() { return Heavy.top(100); } }
|} in
  let mid cls name = (Option.get (B.find_method dx cls name)).B.cm_id in
  let region = Regions.compilable_region dx (mid "Heavy" "top") in
  Alcotest.(check bool) "work included" true
    (List.mem (mid "Heavy" "work") region);
  Alcotest.(check bool) "try/catch helper excluded" false
    (List.mem (mid "Heavy" "helper") region)

let test_algorithm1_picks_biggest_region () =
  let dx = compile {|
class A {
  static int small(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + 1; }
    return s;
  }
  static int big(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + small(50); }
    return s;
  }
}
class Main { static int main() { Sys.print(1); return A.big(500); } }
|} in
  let ctx = Vm.Image.build dx in
  ctx.Vm.Exec_ctx.sample_period <- 5_000;
  ctx.Vm.Exec_ctx.next_sample <- 5_000;
  Vm.Interp.install ctx;
  ignore (Vm.Interp.run_main ctx);
  let profile = Profile.of_ctx ctx in
  match Regions.hot_region dx profile with
  | Some mid ->
    Alcotest.(check string) "big wins" "big" dx.B.dx_methods.(mid).B.cm_name
  | None -> Alcotest.fail "no hot region"

let test_breakdown_sums_to_one () =
  let app = Option.get (App.find "DroidFish") in
  let online = Repro_core.Pipeline.online_run ~seed:3 app in
  let region =
    match Repro_core.Pipeline.hot_region_of app online with
    | Some hot -> Repro_core.Pipeline.region_methods app hot
    | None -> []
  in
  let fractions =
    Breakdown.of_profile (App.dexfile app) ~region online.Repro_core.Pipeline.profile
  in
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 fractions in
  Alcotest.(check (float 1e-6)) "fractions sum to 1" 1.0 total;
  Alcotest.(check int) "all five categories" 5 (List.length fractions)

let test_droidfish_is_jni_heavy () =
  (* the modelled native engine must dominate, as in the paper *)
  let app = Option.get (App.find "DroidFish") in
  let online = Repro_core.Pipeline.online_run ~seed:3 app in
  let region =
    match Repro_core.Pipeline.hot_region_of app online with
    | Some hot -> Repro_core.Pipeline.region_methods app hot
    | None -> []
  in
  let fractions =
    Breakdown.of_profile (App.dexfile app) ~region online.Repro_core.Pipeline.profile
  in
  let jni = List.assoc Breakdown.Jni fractions in
  Alcotest.(check bool) "JNI > 25%" true (jni > 0.25)

let test_hottest_tie_break_deterministic () =
  (* Tied sample counts must come back in ascending method-id order, not
     hash-table iteration order: Regions.hot_region's [>=] tie-break keeps
     the first candidate, so an unspecified order here would make region
     selection nondeterministic. *)
  let sample mid n = List.init n (fun _ -> (mid, false)) in
  let samples = sample 9 2 @ sample 3 2 @ sample 12 5 @ sample 5 2 in
  let profile = { Profile.samples; total = List.length samples } in
  Alcotest.(check (list (pair int int)))
    "count desc, then method id asc"
    [ (12, 5); (3, 2); (5, 2); (9, 2) ]
    (Profile.hottest profile);
  (* native samples never count toward hotness *)
  let with_native =
    { Profile.samples = (7, true) :: samples;
      total = 1 + List.length samples }
  in
  Alcotest.(check (list (pair int int))) "native excluded"
    [ (12, 5); (3, 2); (5, 2); (9, 2) ]
    (Profile.hottest with_native)

let test_breakdown_empty_profile () =
  let dx = compile src_with_io_and_pure in
  let empty = { Profile.samples = []; total = 0 } in
  Alcotest.(check int) "empty profile -> empty breakdown" 0
    (List.length (Breakdown.of_profile dx ~region:[] empty));
  List.iter
    (fun (_, f) ->
       if Float.is_nan f then Alcotest.fail "NaN fraction leaked")
    (Breakdown.of_profile dx ~region:[] empty)

let test_profile_exclusive_counts () =
  let dx = compile src_with_io_and_pure in
  let ctx = Vm.Image.build dx in
  ctx.Vm.Exec_ctx.sample_period <- 2_000;
  ctx.Vm.Exec_ctx.next_sample <- 2_000;
  Vm.Interp.install ctx;
  ignore (Vm.Interp.run_main ctx);
  let profile = Profile.of_ctx ctx in
  let spin = (Option.get (B.find_method dx "Pure" "spin")).B.cm_id in
  Alcotest.(check bool) "spin dominates" true
    (Profile.exclusive profile spin * 2 > profile.Profile.total)

let () =
  Alcotest.run "profiler"
    [ ("replayability",
       [ Alcotest.test_case "rules" `Quick test_replayability_rules;
         Alcotest.test_case "transitive" `Quick test_region_replayable_is_transitive;
         Alcotest.test_case "compilable region" `Quick
           test_compilable_region_cuts_at_uncompilable ]);
      ("algorithm1",
       [ Alcotest.test_case "biggest region" `Quick test_algorithm1_picks_biggest_region;
         Alcotest.test_case "exclusive counts" `Quick test_profile_exclusive_counts;
         Alcotest.test_case "hottest tie-break deterministic" `Quick
           test_hottest_tie_break_deterministic ]);
      ("breakdown",
       [ Alcotest.test_case "sums to one" `Quick test_breakdown_sums_to_one;
         Alcotest.test_case "droidfish jni-heavy" `Quick test_droidfish_is_jni_heavy;
         Alcotest.test_case "empty profile" `Quick test_breakdown_empty_profile ]) ]
