(* The differential net for the block-fused execution engine: every
   observable of a replay — outcome class, crash message, return value,
   cycle count (also at crash time), dirty memory, profiler samples —
   must be byte-identical between Repro_lir.Exec (reference) and
   Repro_lir.Blockexec (fused), for conforming and non-conforming code
   alike.  A qcheck campaign sweeps random genomes over registry apps and
   corpus inputs; pinned cases cover the spots where the fused engine
   could legally have diverged: a branch into the middle of a fusible
   pair, fuel exhaustion inside a hoisted segment, guard-stripped
   binaries on adversarial inputs, injected executor faults, and the
   sampling-profiler fallback. *)

module B = Repro_dex.Bytecode
module Ast = Repro_dex.Ast
module Hir = Repro_hgraph.Hir
module Vm = Repro_vm
module Ctx = Repro_vm.Exec_ctx
module Value = Repro_vm.Value
module Lir = Repro_lir
module Binary = Repro_lir.Binary
module Exec = Repro_lir.Exec
module Blockexec = Repro_lir.Blockexec
module Blockplan = Repro_lir.Blockplan
module Replay = Repro_capture.Replay
module Verify = Repro_capture.Verify
module App = Repro_apps.Registry
module Pipeline = Repro_core.Pipeline
module Genome = Repro_search.Genome
module Rng = Repro_util.Rng
module Trace = Repro_util.Trace
module Faults = Repro_util.Faults

let campaign_count =
  match Option.bind (Sys.getenv_opt "BLOCKEXEC_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | Some _ | None -> 200

(* ------------------------- lockstep machinery ----------------------- *)

(* Collect the (mid, bid, cycles) stream both engines publish through
   Exec.block_hook.  On divergence the first differing entry names the
   exact block where the engines parted ways. *)
let with_block_stream f =
  let stream = ref [] in
  Exec.block_hook := Some (fun mid bid cyc -> stream := (mid, bid, cyc) :: !stream);
  Fun.protect ~finally:(fun () -> Exec.block_hook := None) f;
  List.rev !stream

let show_entry (mid, bid, cyc) = Printf.sprintf "m%d:b%d@%d" mid bid cyc

let first_divergence ref_s fused_s =
  let rec go i = function
    | [], [] -> None
    | a :: _, [] -> Some (i, Some a, None)
    | [], b :: _ -> Some (i, None, Some b)
    | a :: ra, b :: rb ->
      if a = b then go (i + 1) (ra, rb) else Some (i, Some a, Some b)
  in
  go 0 (ref_s, fused_s)

let dump_block dx (binary : Binary.t) (mid, bid, _) =
  let _ = dx in
  match Binary.find binary mid with
  | None -> Printf.sprintf "m%d not in binary" mid
  | Some f ->
    (match Hashtbl.find_opt f.Hir.f_blocks bid with
     | None -> Printf.sprintf "m%d (%s): no block b%d" mid f.Hir.f_name bid
     | Some b ->
       Printf.sprintf "m%d (%s) b%d:\n  %s\n  %s" mid f.Hir.f_name bid
         (String.concat "\n  " (List.map Hir.string_of_instr b.Hir.insns))
         (Hir.string_of_term b.Hir.term))

(* ------------------------ replay comparison ------------------------- *)

let show_outcome = function
  | Replay.Finished (v, cyc) ->
    Printf.sprintf "finished(%s, %d cycles)"
      (match v with Some v -> Value.to_string v | None -> "()")
      cyc
  | Replay.Crashed msg -> Printf.sprintf "crashed(%s)" msg
  | Replay.Hung -> "hung"

let outcome_eq a b =
  match a, b with
  | Replay.Finished (va, ca), Replay.Finished (vb, cb) ->
    ca = cb
    && (match va, vb with
        | None, None -> true
        | Some x, Some y -> Value.equal x y
        | Some _, None | None, Some _ -> false)
  | Replay.Crashed ma, Replay.Crashed mb -> String.equal ma mb
  | Replay.Hung, Replay.Hung -> true
  | _ -> false

(* Run the same (dx, snapshot, binary) replay under both engines and
   explain the first divergent block if any observable differs.  Compares
   outcome, post-replay cycle counter (exact also for crashes and
   timeouts), and the dirty heap/static words. *)
let compare_replay ?fuel ?faults_key ~what dx snap binary =
  let replay engine () =
    Replay.run ?fuel ?faults_key ~engine dx snap (Replay.Optimized binary)
  in
  let sref = ref [] and sfused = ref [] in
  let rref = ref None and rfused = ref None in
  sref := with_block_stream (fun () -> rref := Some (replay Blockexec.Ref ()));
  sfused :=
    with_block_stream (fun () -> rfused := Some (replay Blockexec.Fused ()));
  let rr = Option.get !rref and rf = Option.get !rfused in
  let explain problem =
    let where =
      match first_divergence !sref !sfused with
      | None -> "block streams identical"
      | Some (i, a, b) ->
        let side name binary = function
          | None -> Printf.sprintf "%s: <stream ended>" name
          | Some e ->
            Printf.sprintf "%s: %s\n%s" name (show_entry e)
              (dump_block dx binary e)
        in
        Printf.sprintf "first divergent block at step %d\n%s\n%s" i
          (side "ref" binary a) (side "fused" binary b)
    in
    Alcotest.fail
      (Printf.sprintf "%s: %s\nref:   %s\nfused: %s\n%s" what problem
         (show_outcome rr.Replay.outcome) (show_outcome rf.Replay.outcome)
         where)
  in
  if not (outcome_eq rr.Replay.outcome rf.Replay.outcome) then
    explain "outcomes differ";
  if rr.Replay.ctx.Ctx.cycles <> rf.Replay.ctx.Ctx.cycles then
    explain
      (Printf.sprintf "post-replay cycles differ (ref %d, fused %d)"
         rr.Replay.ctx.Ctx.cycles rf.Replay.ctx.Ctx.cycles);
  let dref = Verify.diff_against_snapshot rr.Replay.ctx snap in
  let dfused = Verify.diff_against_snapshot rf.Replay.ctx snap in
  if dref <> dfused then explain "dirty heap/static words differ"

(* --------------------- shared app/corpus fixtures ------------------- *)

(* Captures and eval environments are expensive; build once per app. *)
let fixture_cache : (string, App.t * Pipeline.corpus * Pipeline.evaluation_env)
    Hashtbl.t =
  Hashtbl.create 4

let fixture name =
  match Hashtbl.find_opt fixture_cache name with
  | Some f -> f
  | None ->
    let app = Option.get (App.find name) in
    let co = Option.get (Pipeline.capture_corpus ~seed:7 ~k:2 app) in
    let env =
      Pipeline.make_eval_env ~seed:23 ~corpus:co.Pipeline.co_entries app
        co.Pipeline.co_primary
    in
    let f = (app, co, env) in
    Hashtbl.replace fixture_cache name f;
    f

let campaign_apps = [ "FFT"; "LU"; "SOR" ]

(* ------------------------- qcheck campaign -------------------------- *)

(* Random (app, genome, input) triples: compile the genome for the app's
   hot region, then replay the primary capture and every corpus input
   under both engines.  Genomes come from the full GA gene pool, so the
   campaign routinely produces unsafe binaries that crash or loop — the
   property holds for those too (identical crash/hang, identical
   crash-time cycles). *)
let campaign =
  QCheck.Test.make ~name:"engines bit-identical on random genomes"
    ~count:campaign_count
    QCheck.(pair (int_bound 1_000_000) (int_bound 1000))
    (fun (genome_seed, pick) ->
       let name = List.nth campaign_apps (pick mod List.length campaign_apps) in
       let app, co, env = fixture name in
       let _ = app in
       let genome = Genome.random (Rng.create genome_seed) in
       match Pipeline.compile_core env genome with
       | Error _ -> true (* nothing to execute *)
       | Ok binary ->
         let snaps =
           (("primary", co.Pipeline.co_primary.Pipeline.snapshot)
            :: List.map
                 (fun ce ->
                    (ce.Pipeline.ce_input.App.in_label,
                     ce.Pipeline.ce_snapshot))
                 co.Pipeline.co_entries)
         in
         List.iter
           (fun (label, snap) ->
              compare_replay
                ~what:
                  (Printf.sprintf "%s/%s genome=%s" name label
                     (Genome.to_string genome))
                env.Pipeline.dx snap binary)
           snaps;
         true)

(* ----------------- pinned: branch into a fusible pair --------------- *)

(* Hand-built graph: the GuardNull/LoadLen pair is split across blocks b1
   (guard) and b3 (access), and b3 is *also* entered directly from b2 —
   the layout where fusing across the seam would execute the guard on a
   path that never had one.  The plan must keep the halves unfused
   (ops_fused = 0) yet execute both entry paths bit-identically.  The
   same access sequence inside one block must fuse (ops_fused > 0) and
   still agree. *)
let two_path_func ~mid ~split =
  let f =
    { Hir.f_mid = mid; f_name = "two_path"; f_nparams = 0; f_nregs = 8;
      f_blocks = Hashtbl.create 8; f_entry = 0; f_next_bid = 0;
      f_pressure = None }
  in
  (* b0 *)
  ignore
    (Hir.add_block f
       [ Hir.Const (0, B.Cint 4);      (* array length *)
         Hir.NewArr (1, B.Kint, 0);
         Hir.Const (2, B.Cint 1) ]     (* branch selector *)
       (Hir.If (B.Cne, 2, None, 1, 2, Hir.Predict_none)));
  if split then begin
    (* b1: guard only, fall through to the access block *)
    ignore (Hir.add_block f [ Hir.GuardNull 1 ] (Hir.Goto 3));
    (* b2: skips the guard, enters the access block mid-"pair" *)
    ignore (Hir.add_block f [ Hir.Const (3, B.Cint 0) ] (Hir.Goto 3));
    (* b3: the access half *)
    ignore (Hir.add_block f [ Hir.LoadLen (4, 1) ] (Hir.Ret (Some 4)))
  end
  else begin
    (* same work, pair adjacent in one block: must fuse *)
    ignore
      (Hir.add_block f [ Hir.GuardNull 1; Hir.LoadLen (4, 1) ]
         (Hir.Ret (Some 4)));
    ignore (Hir.add_block f [ Hir.Const (3, B.Cint 0) ] (Hir.Goto 1));
    ignore (Hir.add_block f [ Hir.LoadLen (4, 1) ] (Hir.Ret (Some 4)))
  end;
  f

(* A dexfile to host hand-built mains: classes/statics/main id come from a
   trivial MiniDex program; we overlay our graph on its main method id. *)
let host_dx () =
  Repro_dex.Lower.compile
    "class Main { static int main() { return 0; } }"

let run_engine engine dx binary =
  let ctx = Vm.Image.build ~seed:7 dx in
  Blockexec.install_engine engine ctx binary;
  match Vm.Interp.run_main ctx with
  | r -> (`Ret r, ctx.Ctx.cycles, ctx)
  | exception Ctx.App_exception code -> (`Exc code, ctx.Ctx.cycles, ctx)
  | exception Exec.Segfault msg -> (`Segv msg, ctx.Ctx.cycles, ctx)
  | exception Ctx.Timeout -> (`Timeout, ctx.Ctx.cycles, ctx)
  | exception Invalid_argument msg -> (`Invalid msg, ctx.Ctx.cycles, ctx)

let agree ~what dx binary =
  let r1, c1, _ = run_engine Blockexec.Ref dx binary in
  let r2, c2, _ = run_engine Blockexec.Fused dx binary in
  Alcotest.(check bool) (what ^ ": results agree") true (r1 = r2);
  Alcotest.(check int) (what ^ ": cycles agree") c1 c2

let fused_count f =
  Trace.enable ();
  Trace.reset ();
  Blockplan.reset_cache ();
  ignore (Blockplan.plan_for (Binary.create [ f ]));
  let n = Trace.counter_value "blockexec.ops_fused" in
  Trace.reset ();
  Trace.disable ();
  n

let test_branch_into_pair () =
  let dx = host_dx () in
  let mid = dx.B.dx_main in
  let split = two_path_func ~mid ~split:true in
  let joined = two_path_func ~mid ~split:false in
  Alcotest.(check int) "cross-seam pair is not fused" 0
    (fused_count (Hir.copy split));
  Alcotest.(check bool) "same-block pair fuses" true
    (fused_count (Hir.copy joined) >= 1);
  agree ~what:"split layout" dx (Binary.create [ split ]);
  agree ~what:"joined layout" dx (Binary.create [ joined ])

(* A dispatch target the graph does not contain must fail with the
   reference's exact Hir.block message, from both engines. *)
let test_missing_block () =
  let dx = host_dx () in
  let mid = dx.B.dx_main in
  let f =
    { Hir.f_mid = mid; f_name = "missing"; f_nparams = 0; f_nregs = 4;
      f_blocks = Hashtbl.create 4; f_entry = 0; f_next_bid = 0;
      f_pressure = None }
  in
  ignore
    (Hir.add_block f [ Hir.Const (0, B.Cint 1) ]
       (Hir.If (B.Cne, 0, None, 7, 0, Hir.Predict_none)));
  f.Hir.f_next_bid <- 8;  (* target 7 is in range but absent *)
  (* pre-fill the pressure cache: Analysis.pressure walks the CFG and
     would itself trip over the dangling edge at Binary.create time *)
  f.Hir.f_pressure <- Some 0;
  let binary = Binary.create [ f ] in
  let r1, c1, _ = run_engine Blockexec.Ref dx binary in
  let r2, c2, _ = run_engine Blockexec.Fused dx binary in
  (match r1 with
   | `Invalid msg ->
     Alcotest.(check bool) "Hir.block message" true
       (String.length msg >= 9 && String.sub msg 0 9 = "Hir.block")
   | _ -> Alcotest.fail "reference did not raise Invalid_argument");
  Alcotest.(check bool) "same failure" true (r1 = r2);
  Alcotest.(check int) "same cycles at failure" c1 c2

(* ------------------ pinned: fuel death inside a block --------------- *)

(* A long straight-line block (the exact shape the headroom hoist targets)
   run under every fuel value around its total cost: at each fuel the
   engines must agree on finished-vs-hung *and* on the cycle counter at
   the moment the verdict fell — the reference charges per instruction, so
   any sloppiness in the fused engine's flush-on-Timeout shows up here. *)
let test_fuel_exhaustion_mid_block () =
  let src =
    "class Main { static int main() { \
       int a = 1; int b = 2; int c = 3; \
       a = a + b; b = b + c; c = c + a; \
       a = a * b; b = b * c; c = c * a; \
       a = a + b; b = b + c; c = c + a; \
       a = a * b; b = b * c; c = c * a; \
       return a + b + c; } }"
  in
  let dx = Repro_dex.Lower.compile src in
  let binary = Lir.Compile.android_binary dx (List.map (fun m -> m.B.cm_id) (Array.to_list dx.B.dx_methods)) in
  (* total cost of the whole program under the reference engine *)
  let total =
    let ctx = Vm.Image.build ~seed:7 dx in
    Exec.install ctx binary;
    ignore (Vm.Interp.run_main ctx);
    ctx.Ctx.cycles
  in
  let run_with_fuel engine fuel =
    let ctx = Vm.Image.build ~seed:7 ~fuel dx in
    Blockexec.install_engine engine ctx binary;
    match Vm.Interp.run_main ctx with
    | r -> (`Done r, ctx.Ctx.cycles)
    | exception Ctx.Timeout -> (`Timeout, ctx.Ctx.cycles)
  in
  for fuel = 0 to total + 2 do
    let vr, cr = run_with_fuel Blockexec.Ref fuel in
    let vf, cf = run_with_fuel Blockexec.Fused fuel in
    if vr <> vf then
      Alcotest.fail
        (Printf.sprintf "fuel %d: verdicts differ (ref %s, fused %s)" fuel
           (match vr with `Done _ -> "done" | `Timeout -> "timeout")
           (match vf with `Done _ -> "done" | `Timeout -> "timeout"));
    if cr <> cf then
      Alcotest.fail
        (Printf.sprintf "fuel %d: cycles at verdict differ (ref %d, fused %d)"
           fuel cr cf)
  done;
  (* sanity: the sweep actually crossed the boundary *)
  Alcotest.(check bool) "low fuel times out" true
    (fst (run_with_fuel Blockexec.Fused 1) = `Timeout);
  Alcotest.(check bool) "full fuel finishes" true
    (match run_with_fuel Blockexec.Fused total with `Done _, _ -> true | _ -> false)

(* ------------- pinned: guard-stripped genome, K>=2 corpus ----------- *)

(* The guard-stripping soundness hole and its corpus fix must look exactly
   the same through both engines: pass on the captured input, killed by
   the adversarial corpus input, with identical verdicts. *)
let test_guard_stripped_killed_identically () =
  let app, co, env = fixture "FFT" in
  let _ = app in
  let genome = Repro_core.Experiments.pinned_unsafe_genome () in
  let binary =
    match Pipeline.compile_core env genome with
    | Ok b -> b
    | Error _ -> Alcotest.fail "pinned genome failed to compile"
  in
  let with_engine e f =
    let prev = Blockexec.default_engine () in
    Blockexec.set_default_engine e;
    Fun.protect ~finally:(fun () -> Blockexec.set_default_engine prev) f
  in
  let verdicts engine =
    with_engine engine @@ fun () ->
    let primary =
      Verify.check env.Pipeline.dx
        co.Pipeline.co_primary.Pipeline.snapshot env.Pipeline.vmap binary
    in
    let corpus =
      List.map
        (fun ce ->
           Verify.check_ref env.Pipeline.dx ce.Pipeline.ce_snapshot
             ce.Pipeline.ce_reference binary)
        co.Pipeline.co_entries
    in
    primary :: corpus
  in
  let show = function
    | Verify.Passed c -> Printf.sprintf "passed:%d" c
    | Verify.Wrong_output -> "wrong-output"
    | Verify.Crashed m -> "crashed:" ^ m
    | Verify.Hung -> "hung"
  in
  let vr = List.map show (verdicts Blockexec.Ref) in
  let vf = List.map show (verdicts Blockexec.Fused) in
  Alcotest.(check (list string)) "verdicts identical across engines" vr vf;
  (* the net still catches the stripped binary *)
  let passed s = String.length s >= 7 && String.sub s 0 7 = "passed:" in
  match vr with
  | [] -> Alcotest.fail "no verdicts"
  | primary :: corpus ->
    Alcotest.(check bool) "passes the captured input" true (passed primary);
    Alcotest.(check bool) "corpus kills the stripped binary" true
      (List.exists (fun s -> not (passed s)) corpus)

(* First genome from [seed; seed+1; ...] that compiles (random genomes can
   exceed the compile budgets). *)
let compiling_genome env seed =
  let rec go s =
    if s > seed + 50 then Alcotest.fail "no compiling genome found"
    else
      match Pipeline.compile_core env (Genome.random (Rng.create s)) with
      | Ok b -> b
      | Error _ -> go (s + 1)
  in
  go seed

(* ------------------- pinned: injected executor faults --------------- *)

(* Exec_crash / Exec_hang / Exec_wrong_ret must fire at the same keyed
   call and produce the same verdict through both engines: the fused
   engine replicates the reference's fault points, not just its happy
   path. *)
let test_faults_through_both_engines () =
  let app, co, env = fixture "FFT" in
  let _ = app in
  let snap = co.Pipeline.co_primary.Pipeline.snapshot in
  let binary = compiling_genome env 42 in
  List.iter
    (fun only ->
       Faults.enable
         (Result.get_ok
            (Faults.parse_spec (Printf.sprintf "seed=11,rate=1.0,only=%s" only)));
       Fun.protect ~finally:Faults.disable @@ fun () ->
       for key = 0 to 4 do
         compare_replay ~faults_key:key
           ~what:(Printf.sprintf "fault %s key %d" only key)
           env.Pipeline.dx snap binary
       done)
    [ "exec-crash"; "exec-wrong-ret" ];
  (* hang: bounded fuel so the injected spin terminates quickly *)
  Faults.enable
    (Result.get_ok (Faults.parse_spec "seed=11,rate=1.0,only=exec-hang"));
  Fun.protect ~finally:Faults.disable @@ fun () ->
  compare_replay ~fuel:2_000_000 ~faults_key:1 ~what:"fault exec-hang"
    env.Pipeline.dx snap binary

(* ---------------------- plan cache determinism ---------------------- *)

let test_plan_cache_counters () =
  let app, co, env = fixture "FFT" in
  let _ = app and _ = co in
  let binary = compiling_genome env 3 in
  Trace.enable ();
  Trace.reset ();
  Blockplan.reset_cache ();
  let p1 = Blockplan.plan_for binary in
  let p2 = Blockplan.plan_for binary in
  let p3 = Blockplan.plan_for binary in
  Alcotest.(check bool) "same plan object" true (p1 == p2 && p2 == p3);
  Alcotest.(check int) "one build" 1 (Trace.counter_value "blockexec.plan_builds");
  Alcotest.(check int) "two hits" 2
    (Trace.counter_value "blockexec.plan_cache_hits");
  Alcotest.(check bool) "plans report fusions" true
    (Trace.counter_value "blockexec.ops_fused" > 0);
  Alcotest.(check bool) "plans report hoisted checks" true
    (Trace.counter_value "blockexec.checks_hoisted" > 0);
  Alcotest.(check bool) "plans report blocks" true
    (Trace.counter_value "blockexec.blocks_formed" > 0);
  (* a different cost model is a different plan *)
  let other = { Vm.Cost.default with Vm.Cost.int_alu = 2 } in
  let p4 = Blockplan.plan_for ~cost:other binary in
  Alcotest.(check bool) "cost model keys the cache" true (not (p4 == p1));
  Alcotest.(check int) "second build" 2
    (Trace.counter_value "blockexec.plan_builds");
  (* the cache key is the Evalpool memo key *)
  Alcotest.(check string) "digest = binary_key" (Binary.digest binary)
    (Pipeline.binary_key binary);
  Trace.reset ();
  Trace.disable ()

(* ----------------------- sampling fallback -------------------------- *)

(* With the profiler armed the fused dispatcher must route through the
   reference engine, so samples land on identical cycle boundaries. *)
let test_sampling_fallback () =
  let app, _, _ = fixture "FFT" in
  let samples engine =
    let prev = Blockexec.default_engine () in
    Blockexec.set_default_engine engine;
    Fun.protect
      ~finally:(fun () -> Blockexec.set_default_engine prev)
      (fun () ->
         let online = Pipeline.online_run ~seed:7 ~sample_period:5_000 app in
         ( online.Pipeline.cycles,
           List.map
             (fun s -> (s.Ctx.s_method, s.Ctx.s_native))
             online.Pipeline.ctx.Ctx.samples ))
  in
  let cr, sr = samples Blockexec.Ref in
  let cf, sf = samples Blockexec.Fused in
  Alcotest.(check int) "cycles agree under sampling" cr cf;
  Alcotest.(check bool) "sample streams identical" true (sr = sf);
  Alcotest.(check bool) "samples were taken" true (sr <> [])

(* -------------------------------------------------------------------- *)

let () =
  Alcotest.run "blockexec"
    [ ("differential",
       [ QCheck_alcotest.to_alcotest campaign ]);
      ("pinned",
       [ Alcotest.test_case "branch into fusible pair" `Quick
           test_branch_into_pair;
         Alcotest.test_case "missing dispatch target" `Quick
           test_missing_block;
         Alcotest.test_case "fuel exhaustion mid-block" `Quick
           test_fuel_exhaustion_mid_block;
         Alcotest.test_case "guard-stripped killed identically" `Quick
           test_guard_stripped_killed_identically;
         Alcotest.test_case "executor faults through both engines" `Quick
           test_faults_through_both_engines ]);
      ("plan cache",
       [ Alcotest.test_case "counters and keying" `Quick
           test_plan_cache_counters ]);
      ("profiler",
       [ Alcotest.test_case "sampling falls back to reference" `Quick
           test_sampling_fallback ]) ]
