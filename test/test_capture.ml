(* Tests for the capture/replay machinery: snapshots, replay determinism,
   verification maps, dispatch-type profiles, storage accounting. *)

open Repro_capture
module B = Repro_dex.Bytecode
module Mem = Repro_os.Mem
module Vm = Repro_vm
module Pipeline = Repro_core.Pipeline
module App = Repro_apps.Registry

let fft () = Option.get (App.find "FFT")
let lu () = Option.get (App.find "LU")

let capture_app app = Option.get (Pipeline.capture_once ~seed:5 app)

(* one shared capture for most tests *)
let fft_capture = lazy (capture_app (fft ()))

let test_capture_produces_snapshot () =
  let cap = Lazy.force fft_capture in
  let snap = cap.Pipeline.snapshot in
  Alcotest.(check bool) "program pages present" true
    (List.length snap.Snapshot.snap_pages > 0);
  Alcotest.(check bool) "common pages present" true
    (List.length snap.Snapshot.snap_common > 1000);
  Alcotest.(check bool) "args captured" true
    (List.length snap.Snapshot.snap_args = 2);
  Alcotest.(check bool) "code files logged, not stored" true
    (List.length snap.Snapshot.snap_code_files > 10)

let test_capture_overhead_positive () =
  let cap = Lazy.force fft_capture in
  let o = cap.Pipeline.overhead in
  Alcotest.(check bool) "fork > 0" true (o.Capture.fork_ms > 0.0);
  Alcotest.(check bool) "prep > 0" true (o.Capture.preparation_ms > 0.0);
  Alcotest.(check bool) "total < 50ms" true (Capture.total_ms o < 50.0);
  Alcotest.(check bool) "faults observed" true (o.Capture.n_faults > 0)

let test_capture_charges_online_time () =
  (* the same run without capture is faster: capture overhead is charged
     to the online execution *)
  let app = fft () in
  let plain = Pipeline.online_run ~seed:5 app in
  let cap = capture_app app in
  Alcotest.(check bool) "capture slows the online run" true
    (cap.Pipeline.online_with_capture.Pipeline.cycles > plain.Pipeline.cycles)

let test_replay_matches_original_region () =
  let cap = Lazy.force fft_capture in
  let app = fft () in
  let dx = App.dexfile app in
  let r = Replay.run dx cap.Pipeline.snapshot Replay.Interpreter in
  match r.Replay.outcome with
  | Replay.Finished (ret, _) ->
    Alcotest.(check bool) "region returns a float" true
      (match ret with Some (Vm.Value.Vfloat _) -> true | _ -> false)
  | _ -> Alcotest.fail "interpreted replay failed"

let test_replay_deterministic () =
  let cap = Lazy.force fft_capture in
  let dx = App.dexfile (fft ()) in
  let run () = Replay.run dx cap.Pipeline.snapshot Replay.Interpreter in
  let a = run () and b = run () in
  match a.Replay.outcome, b.Replay.outcome with
  | Replay.Finished (ra, ca), Replay.Finished (rb, cb) ->
    Alcotest.(check bool) "same result" true
      (match ra, rb with
       | Some x, Some y -> Vm.Value.equal x y
       | None, None -> true
       | _ -> false);
    Alcotest.(check int) "same cycles" ca cb
  | _ -> Alcotest.fail "replay failed"

let test_replay_code_versions_agree () =
  let cap = Lazy.force fft_capture in
  let app = fft () in
  let dx = App.dexfile app in
  let android = Pipeline.android_binary_for app in
  let interp = Replay.run dx cap.Pipeline.snapshot Replay.Interpreter in
  let compiled =
    Replay.run dx cap.Pipeline.snapshot (Replay.Android_code android)
  in
  match interp.Replay.outcome, compiled.Replay.outcome with
  | Replay.Finished (ri, ci), Replay.Finished (rc, cc) ->
    Alcotest.(check bool) "same result" true
      (match ri, rc with
       | Some x, Some y -> Vm.Value.equal x y
       | _ -> false);
    Alcotest.(check bool) "compiled faster" true (cc < ci)
  | _ -> Alcotest.fail "replay failed"

let test_verification_map_accepts_safe () =
  let app = lu () in
  let cap = capture_app app in
  let env = Pipeline.make_eval_env app cap in
  let binary =
    Repro_lir.Compile.llvm_binary (App.dexfile app) Repro_lir.Pipelines.o2
      env.Pipeline.region
  in
  match Verify.check (App.dexfile app) cap.Pipeline.snapshot env.Pipeline.vmap binary with
  | Verify.Passed _ -> ()
  | _ -> Alcotest.fail "O2 should verify"

let test_verification_map_rejects_fast_math () =
  let app = lu () in
  let cap = capture_app app in
  let env = Pipeline.make_eval_env app cap in
  let binary =
    Repro_lir.Compile.llvm_binary (App.dexfile app)
      (Repro_lir.Pipelines.o2 @ [ ("fast-math", [| 1; 1 |]) ])
      env.Pipeline.region
  in
  match Verify.check (App.dexfile app) cap.Pipeline.snapshot env.Pipeline.vmap binary with
  | Verify.Wrong_output -> ()
  | Verify.Passed _ -> Alcotest.fail "fast-math should change LU's bits"
  | Verify.Crashed m -> Alcotest.fail ("crashed: " ^ m)
  | Verify.Hung -> Alcotest.fail "hung"

(* Hand-built region bodies over the FFT capture exercise each failure
   class of Verify.check directly: the differential-testing net must not
   only accept good code, it must name *why* bad code was rejected. *)

module Hir = Repro_hgraph.Hir
module Binary = Repro_lir.Binary

let stub_func ~mid ~nparams build =
  let f =
    { Hir.f_mid = mid; f_name = "stub"; f_nparams = nparams;
      f_nregs = nparams; f_blocks = Hashtbl.create 4; f_entry = 0;
      f_next_bid = 0; f_pressure = None }
  in
  build f;
  f

(* the android binary with the hot-region root method swapped for [f] *)
let with_stub binary mid f =
  Binary.create
    (List.map
       (fun m -> if m = mid then f else Option.get (Binary.find binary m))
       (Binary.mids binary))

let verify_fixture () =
  let app = fft () in
  let cap = Lazy.force fft_capture in
  let dx = App.dexfile app in
  let snap = cap.Pipeline.snapshot in
  let vmap = Verify.collect dx snap in
  let mid = cap.Pipeline.hot_mid in
  let nparams = List.length snap.Snapshot.snap_args in
  let binary = Pipeline.android_binary_for app in
  (dx, snap, vmap, mid, nparams, binary)

let test_verify_flags_wrong_output () =
  let dx, snap, vmap, mid, nparams, binary = verify_fixture () in
  let bad =
    stub_func ~mid ~nparams (fun f ->
        let r = Hir.fresh_reg f in
        ignore (Hir.add_block f [ Hir.Const (r, B.Cint 7) ] (Hir.Ret (Some r))))
  in
  match Verify.check dx snap vmap (with_stub binary mid bad) with
  | Verify.Wrong_output -> ()
  | Verify.Passed _ -> Alcotest.fail "constant region passed verification"
  | Verify.Crashed m -> Alcotest.fail ("crashed: " ^ m)
  | Verify.Hung -> Alcotest.fail "hung"

let test_verify_flags_crash () =
  let dx, snap, vmap, mid, nparams, binary = verify_fixture () in
  let bad =
    stub_func ~mid ~nparams (fun f ->
        let r = Hir.fresh_reg f in
        ignore (Hir.add_block f [ Hir.Const (r, B.Cint 7) ] (Hir.ThrowT r)))
  in
  match Verify.check dx snap vmap (with_stub binary mid bad) with
  | Verify.Crashed _ -> ()
  | Verify.Passed _ -> Alcotest.fail "throwing region passed verification"
  | Verify.Wrong_output -> Alcotest.fail "crash misreported as wrong output"
  | Verify.Hung -> Alcotest.fail "crash misreported as hang"

let test_verify_flags_hang () =
  let dx, snap, vmap, mid, nparams, binary = verify_fixture () in
  let bad =
    stub_func ~mid ~nparams (fun f ->
        ignore (Hir.add_block f [] (Hir.Goto 0)))
  in
  match Verify.check ~fuel:10_000 dx snap vmap (with_stub binary mid bad) with
  | Verify.Hung -> ()
  | Verify.Passed _ -> Alcotest.fail "infinite loop passed verification"
  | Verify.Wrong_output -> Alcotest.fail "hang misreported as wrong output"
  | Verify.Crashed m -> Alcotest.fail ("hang misreported as crash: " ^ m)

let test_typeprof_collected () =
  let app = Option.get (App.find "ColorOverflow") in
  let cap = capture_app app in
  let env = Pipeline.make_eval_env app cap in
  Alcotest.(check bool) "virtual sites profiled" true
    (Typeprof.total env.Pipeline.typeprof > 0)

module Storage = Repro_os.Storage

let test_storage_accounting () =
  let cap = Lazy.force fft_capture in
  let snap = cap.Pipeline.snapshot in
  let storage = Storage.create () in
  Snapshot.store storage snap;
  Alcotest.(check int) "logical = program + common"
    (Snapshot.program_bytes snap + Snapshot.common_bytes snap)
    (Storage.total_bytes storage);
  Storage.flush storage;
  (* a second capture of another app: its boot-common pages dedup against
     the frames app 1 already stored — each shared page is stored once *)
  let cap2 = capture_app (lu ()) in
  let snap2 = cap2.Pipeline.snapshot in
  Snapshot.store storage snap2;
  Storage.flush storage;
  let hashes label =
    match Storage.manifest storage ~label with
    | Some entries -> List.map snd entries
    | None -> Alcotest.failf "blob %s missing" label
  in
  let common1 = hashes (Snapshot.common_label snap) in
  let common2 = hashes (Snapshot.common_label snap2) in
  let shared_frames =
    List.filter (fun h -> List.mem h common2) common1
  in
  Alcotest.(check bool) "boot-common pages shared across apps" true
    (List.length shared_frames > 100);
  List.iter
    (fun h ->
       match Storage.frame_refs storage ~hash:h with
       | Some rc -> Alcotest.(check bool) "stored once, referenced twice" true (rc >= 2)
       | None -> Alcotest.fail "shared frame missing")
    shared_frames;
  let ac = Storage.accounting storage in
  Alcotest.(check bool) "dedup saves physical bytes" true
    (ac.Storage.ac_physical_bytes < ac.Storage.ac_logical_bytes);
  Alcotest.(check bool) "Figure 11 shape: shared bytes visible" true
    (ac.Storage.ac_shared_bytes >= List.length shared_frames * Storage.page_bytes);
  (* finishing app 1's optimization releases its program-specific blob;
     frames shared with app 2 survive *)
  Snapshot.discard storage snap;
  Alcotest.(check bool) "program blob released" false
    (Storage.contains storage ~label:(Snapshot.program_label snap));
  (match Storage.read storage ~label:(Snapshot.common_label snap2) with
   | Ok pages ->
     Alcotest.(check int) "app 2 intact after app 1 discard"
       (List.length snap2.Snapshot.snap_common) (List.length pages)
   | Error e -> Alcotest.fail (Storage.describe e))

(* with a device store attached, templates materialize from the store and
   a corrupted stored page surfaces as a crashed (quarantinable) replay —
   never an abort *)
let with_attached_store snap f =
  let storage = Storage.create () in
  Snapshot.set_store (Some storage);
  Fun.protect
    ~finally:(fun () ->
        Snapshot.set_store None;
        Snapshot.invalidate_templates ())
    (fun () ->
       Snapshot.store storage snap;
       Storage.flush storage;
       Snapshot.invalidate_templates ();
       f storage)

let test_store_backed_template_equivalent () =
  let cap = Lazy.force fft_capture in
  let snap = cap.Pipeline.snapshot in
  let app = fft () in
  let dx = App.dexfile app in
  let plain =
    match (Replay.run dx snap Replay.Interpreter).Replay.outcome with
    | Replay.Finished (ret, _) -> ret
    | _ -> Alcotest.fail "plain replay failed"
  in
  with_attached_store snap (fun storage ->
      Alcotest.(check bool) "templates read from the store" true
        (Storage.contains storage ~label:(Snapshot.program_label snap));
      match (Replay.run dx snap Replay.Interpreter).Replay.outcome with
      | Replay.Finished (ret, _) ->
        Alcotest.(check bool) "store-backed replay agrees" true
          (match ret, plain with
           | Some a, Some b -> Vm.Value.equal a b
           | None, None -> true
           | _ -> false)
      | _ -> Alcotest.fail "store-backed replay failed")

let test_store_corruption_quarantines_not_crashes () =
  let cap = Lazy.force fft_capture in
  let snap = cap.Pipeline.snapshot in
  let app = fft () in
  let dx = App.dexfile app in
  with_attached_store snap (fun storage ->
      let hash =
        match Storage.manifest storage ~label:(Snapshot.program_label snap) with
        | Some ((_, h) :: _) -> h
        | _ -> Alcotest.fail "program blob empty"
      in
      Storage.corrupt storage ~hash ~byte:123;
      Snapshot.invalidate_templates ();
      (* the loader cannot rebuild the space: a crashed replay with the
         storage error, not an exception out of Replay.run *)
      (match (Replay.run dx snap Replay.Interpreter).Replay.outcome with
       | Replay.Crashed msg ->
         Alcotest.(check bool) "storage-prefixed verdict" true
           (String.length msg >= 8 && String.sub msg 0 8 = "storage:")
       | _ -> Alcotest.fail "corrupt store page not detected");
      (* un-corrupting is impossible (content-addressed); deleting the blob
         falls back to in-memory pages and replay works again *)
      Storage.delete storage ~label:(Snapshot.program_label snap);
      Snapshot.invalidate_templates ();
      match (Replay.run dx snap Replay.Interpreter).Replay.outcome with
      | Replay.Finished _ -> ()
      | _ -> Alcotest.fail "fallback to in-memory pages failed")

let test_eager_mode_costs_more () =
  let app = fft () in
  let normal = (capture_app app).Pipeline.overhead in
  Capture.eager_mode := true;
  let eager =
    (Option.get (Pipeline.capture_once ~seed:5 app)).Pipeline.overhead
  in
  Capture.eager_mode := false;
  Alcotest.(check bool) "eager fault cost >= CoW-based" true
    (eager.Capture.fault_cow_ms >= normal.Capture.fault_cow_ms)

let test_loader_collision_tracking () =
  let cap = Lazy.force fft_capture in
  let dx = App.dexfile (fft ()) in
  let r = Replay.run dx cap.Pipeline.snapshot Replay.Interpreter in
  (* our layout places app data far from the loader range *)
  Alcotest.(check int) "no collisions with this layout" 0
    r.Replay.loader_collisions

(* ----------------- dirty-page verification (CoW replay) ------------- *)

module Trace = Repro_util.Trace

let test_dirty_scan_counter () =
  (* diff work must be proportional to the pages the replay dirtied, not
     to snapshot size: asserted through the verify.pages_scanned counter *)
  let cap = Lazy.force fft_capture in
  let dx = App.dexfile (fft ()) in
  let snap = cap.Pipeline.snapshot in
  Trace.enable ();
  Trace.reset ();
  let r = Replay.run dx snap Replay.Interpreter in
  let ctx = r.Replay.ctx in
  let mem = ctx.Vm.Exec_ctx.mem in
  let before = Trace.counter_value "verify.pages_scanned" in
  let diffs = Verify.diff_against_snapshot ctx snap in
  let scanned = Trace.counter_value "verify.pages_scanned" - before in
  let dirty =
    List.length (Mem.dirty_pages mem ~kind:Mem.Rheap)
    + List.length (Mem.dirty_pages mem ~kind:Mem.Rstatics)
  in
  let snapshot_pages =
    List.length snap.Snapshot.snap_pages + List.length snap.Snapshot.snap_common
  in
  Alcotest.(check int) "scanned exactly the dirty pages" dirty scanned;
  Alcotest.(check bool) "way below snapshot size" true
    (scanned < snapshot_pages / 4);
  Alcotest.(check int) "no full-scan fallback" 0
    (Trace.counter_value "verify.full_scans");
  (* dirtying one more page costs exactly one more scanned page *)
  let heap_map =
    List.find (fun m -> m.Mem.map_kind = Mem.Rheap) snap.Snapshot.snap_maps
  in
  let fresh_addr =
    heap_map.Mem.map_base + ((heap_map.Mem.map_npages - 1) * Mem.page_size)
  in
  Mem.write_int mem fresh_addr 1234;
  let before2 = Trace.counter_value "verify.pages_scanned" in
  ignore (Verify.diff_against_snapshot ctx snap);
  Alcotest.(check int) "one extra dirty page, one extra scan" (scanned + 1)
    (Trace.counter_value "verify.pages_scanned" - before2);
  Trace.disable ();
  Alcotest.(check bool) "same answer as the full scan" true
    (Verify.diff_against_snapshot_full ctx snap
     = List.merge compare [ (fresh_addr, 1234L) ] diffs)

let prop_dirty_diff_equals_full_scan =
  (* satellite (b): the dirty-page diff equals the old full scan on random
     post-replay write patterns (zero-frame pages, CoW pages, clean pages) *)
  QCheck.Test.make ~name:"dirty-page diff = full scan" ~count:20
    QCheck.(list_of_size Gen.(int_range 0 40)
              (triple (int_bound 299) (int_bound (Mem.words_per_page - 1)) int))
    (fun writes ->
       let cap = Lazy.force fft_capture in
       let dx = App.dexfile (fft ()) in
       let snap = cap.Pipeline.snapshot in
       let r = Replay.run dx snap Replay.Interpreter in
       let ctx = r.Replay.ctx in
       let mem = ctx.Vm.Exec_ctx.mem in
       let heap_map =
         List.find (fun m -> m.Mem.map_kind = Mem.Rheap) snap.Snapshot.snap_maps
       in
       List.iter
         (fun (page, word, v) ->
            Mem.write_int mem
              (heap_map.Mem.map_base + (page * Mem.page_size) + (word * 8))
              v)
         writes;
       let fast = Verify.diff_against_snapshot ctx snap in
       let full = Verify.diff_against_snapshot_full ctx snap in
       fast = full && Verify.diff_matches ctx snap full
       && not (Verify.diff_matches ctx snap ((0, 1L) :: full)))

let test_replay_isolated_from_online_memory () =
  (* replays rebuild memory from the snapshot: mutating the replayed heap
     twice gives identical results (no cross-replay leakage) *)
  let app = Option.get (App.find "BubbleSort") in
  let cap = capture_app app in
  let dx = App.dexfile app in
  let once () =
    match (Replay.run dx cap.Pipeline.snapshot Replay.Interpreter).Replay.outcome with
    | Replay.Finished (Some v, _) -> v
    | _ -> Alcotest.fail "replay failed"
  in
  Alcotest.(check bool) "sort twice, same answer" true
    (Vm.Value.equal (once ()) (once ()))

(* ------------------ verification edge cases (pinned) ----------------- *)

(* The verification map's return-value comparison is bit-exact on floats
   (Value.equal compares IEEE bits): NaNs are equal only with identical
   payloads, and negative zero differs from positive zero even though
   OCaml's (=) on floats conflates them.  Pin this — a candidate binary
   that "fixes" -0.0 to 0.0 must be rejected, not silently accepted. *)
let test_verify_float_edge_cases () =
  let eq a b = Vm.Value.equal (Vm.Value.Vfloat a) (Vm.Value.Vfloat b) in
  Alcotest.(check bool) "NaN = NaN (same payload)" true (eq Float.nan Float.nan);
  let other_bits = Int64.logxor (Int64.bits_of_float Float.nan) 2L in
  let other_nan = Int64.float_of_bits other_bits in
  Alcotest.(check bool) "other NaN is still a NaN" true (Float.is_nan other_nan);
  Alcotest.(check bool) "NaN payloads distinguished" false (eq Float.nan other_nan);
  Alcotest.(check bool) "-0.0 <> +0.0 under the verifier" false (eq (-0.0) 0.0);
  Alcotest.(check bool) "(=) would conflate the zeroes" true (-0.0 = 0.0);
  (* the bit-exactness survives the memory encoding used for write sets *)
  Alcotest.(check bool) "NaN payload survives to_word" true
    (Vm.Value.to_word (Vm.Value.Vfloat other_nan) = other_bits);
  Alcotest.(check bool) "-0.0 survives to_word" true
    (Vm.Value.to_word (Vm.Value.Vfloat (-0.0)) = Int64.min_int)

(* A context whose memory is a fresh clone of the snapshot template has an
   empty dirty-page set: the diff must be empty, must equal the full scan,
   and must match exactly the empty write set. *)
let test_verify_empty_dirty_page_set () =
  let cap = Lazy.force fft_capture in
  let snap = cap.Pipeline.snapshot in
  let dx = App.dexfile (fft ()) in
  let mem = Mem.clone (Snapshot.template snap) in
  let heap_map =
    List.find (fun m -> m.Mem.map_kind = Mem.Rheap) snap.Snapshot.snap_maps
  in
  let statics_map =
    List.find (fun m -> m.Mem.map_kind = Mem.Rstatics) snap.Snapshot.snap_maps
  in
  let heap =
    Vm.Heap.restore mem ~base:heap_map.Mem.map_base
      ~npages:heap_map.Mem.map_npages ~next:snap.Snapshot.snap_heap_next
  in
  let ctx =
    Vm.Exec_ctx.create ~seed:0 ~fuel:1000 dx mem heap
      ~statics_base:statics_map.Mem.map_base
  in
  Alcotest.(check bool) "no dirty pages -> empty diff" true
    (Verify.diff_against_snapshot ctx snap = []);
  Alcotest.(check bool) "full scan agrees" true
    (Verify.diff_against_snapshot_full ctx snap = []);
  Alcotest.(check bool) "empty diff matches empty write set" true
    (Verify.diff_matches ctx snap []);
  Alcotest.(check bool) "empty diff rejects non-empty reference" false
    (Verify.diff_matches ctx snap [ (heap_map.Mem.map_base, 1L) ])

(* Conversely a real replay has a non-empty write set, and an empty
   reference map must reject it. *)
let test_verify_empty_write_set_rejects_writer () =
  let cap = Lazy.force fft_capture in
  let snap = cap.Pipeline.snapshot in
  let dx = App.dexfile (fft ()) in
  let r = Replay.run dx snap Replay.Interpreter in
  Alcotest.(check bool) "region writes are observed" true
    (Verify.diff_against_snapshot r.Replay.ctx snap <> []);
  Alcotest.(check bool) "writer cannot match the empty map" false
    (Verify.diff_matches r.Replay.ctx snap [])

(* ----------------------- cross-input corpus ------------------------- *)

(* One shared FFT corpus: primary + "size=6 non-pow2" (reference traps) +
   "nan bias" (reference finishes with a different map). *)
let fft_corpus =
  lazy (Option.get (Pipeline.capture_corpus ~seed:5 ~k:3 (fft ())))

let test_corpus_structure () =
  let co = Lazy.force fft_corpus in
  let labels =
    List.map (fun ce -> ce.Pipeline.ce_input.App.in_label) co.Pipeline.co_entries
  in
  Alcotest.(check (list string)) "adversarial edges in corpus order"
    [ "size=6 non-pow2 (kernel traps)"; "nan bias" ] labels;
  (match co.Pipeline.co_entries with
   | [ trap; nan_entry ] ->
     Alcotest.(check bool) "size=6 reference traps" true
       (match trap.Pipeline.ce_reference with
        | Verify.Ref_crash _ -> true
        | Verify.Ref_map _ -> false);
     Alcotest.(check bool) "nan-bias reference finishes" true
       (match nan_entry.Pipeline.ce_reference with
        | Verify.Ref_map _ -> true
        | Verify.Ref_crash _ -> false)
   | _ -> Alcotest.fail "expected exactly two corpus entries")

(* Verification maps from two different inputs must never be conflated:
   checking a binary against the reference of input j <> i fails loudly
   (a non-Passed verdict), never silently passes. *)
let test_corpus_maps_never_conflated () =
  let co = Lazy.force fft_corpus in
  let app = fft () in
  let dx = App.dexfile app in
  let android = Pipeline.android_binary_for app in
  let primary_snap = co.Pipeline.co_primary.Pipeline.snapshot in
  let primary_map = Verify.collect dx primary_snap in
  let trap, nan_entry =
    match co.Pipeline.co_entries with
    | [ a; b ] -> (a, b)
    | _ -> Alcotest.fail "expected exactly two corpus entries"
  in
  (* sanity: the correct binary passes every (snapshot, reference) pair *)
  List.iter
    (fun ce ->
       match
         Verify.check_ref dx ce.Pipeline.ce_snapshot ce.Pipeline.ce_reference
           android
       with
       | Verify.Passed _ -> ()
       | _ -> Alcotest.fail "android rejected on its own reference")
    co.Pipeline.co_entries;
  (* crash reference paired with the primary (non-trapping) snapshot: the
     binary finishes where the reference crashed -> Wrong_output *)
  Alcotest.(check bool) "crash reference on wrong input fails loudly" true
    (match
       Verify.check_ref dx primary_snap trap.Pipeline.ce_reference android
     with
     | Verify.Wrong_output -> true
     | _ -> false);
  (* primary map paired with the nan-bias snapshot: different writes *)
  Alcotest.(check bool) "primary map on nan input fails loudly" true
    (match
       Verify.check_ref dx nan_entry.Pipeline.ce_snapshot
         (Verify.Ref_map primary_map) android
     with
     | Verify.Wrong_output -> true
     | _ -> false);
  (* finishing map paired with the trapping snapshot: the binary crashes *)
  Alcotest.(check bool) "finishing map on trap input fails loudly" true
    (match
       Verify.check_ref dx trap.Pipeline.ce_snapshot
         nan_entry.Pipeline.ce_reference android
     with
     | Verify.Crashed _ -> true
     | _ -> false)

(* Same seed => byte-identical corpus, twice over: the input plan is
   reproducible (and a prefix of any larger plan), and re-capturing
   produces structurally identical references. *)
let prop_corpus_input_plan_deterministic =
  QCheck.Test.make ~name:"same seed => identical input plan" ~count:40
    QCheck.(pair (int_bound 10_000) (int_range 1 9))
    (fun (seed, k) ->
       List.for_all
         (fun name ->
            let app = Option.get (App.find name) in
            let a = App.input_variants app ~seed ~k in
            let b = App.input_variants app ~seed ~k in
            let bigger = App.input_variants app ~seed ~k:(k + 3) in
            let rec prefix xs ys =
              match xs, ys with
              | [], _ -> true
              | x :: xs, y :: ys -> x = y && prefix xs ys
              | _ :: _, [] -> false
            in
            a = b && prefix a bigger)
         [ "FFT"; "SOR"; "MonteCarlo"; "Sparse matmult"; "LU" ])

let test_corpus_recapture_byte_identical () =
  let co1 = Lazy.force fft_corpus in
  let co2 = Option.get (Pipeline.capture_corpus ~seed:5 ~k:3 (fft ())) in
  let refs co = List.map (fun ce -> ce.Pipeline.ce_reference) co.Pipeline.co_entries in
  (* compare with [compare]: the nan-bias map contains NaN return values,
     which (=) would spuriously distinguish *)
  Alcotest.(check bool) "identical references" true
    (compare (refs co1) (refs co2) = 0);
  Alcotest.(check bool) "identical page counts" true
    (List.map
       (fun ce -> List.length ce.Pipeline.ce_snapshot.Snapshot.snap_pages)
       co1.Pipeline.co_entries
     = List.map
         (fun ce -> List.length ce.Pipeline.ce_snapshot.Snapshot.snap_pages)
         co2.Pipeline.co_entries)

(* K distinct inputs yield at least two distinct verification references
   for every Scimark app: the corpus actually widens the net everywhere. *)
let test_corpus_distinct_references_per_scimark_app () =
  List.iter
    (fun name ->
       let app = Option.get (App.find name) in
       let co = Option.get (Pipeline.capture_corpus ~seed:7 ~k:4 app) in
       let dx = App.dexfile app in
       let primary =
         Verify.Ref_map (Verify.collect dx co.Pipeline.co_primary.Pipeline.snapshot)
       in
       let all =
         primary
         :: List.map (fun ce -> ce.Pipeline.ce_reference) co.Pipeline.co_entries
       in
       let distinct = List.sort_uniq compare all in
       Alcotest.(check bool)
         (name ^ ": >= 2 distinct references") true
         (List.length distinct >= 2))
    [ "FFT"; "SOR"; "MonteCarlo"; "Sparse matmult"; "LU" ]

let () =
  Alcotest.run "capture"
    [ ("capture",
       [ Alcotest.test_case "snapshot contents" `Quick test_capture_produces_snapshot;
         Alcotest.test_case "overhead fields" `Quick test_capture_overhead_positive;
         Alcotest.test_case "charges online time" `Quick test_capture_charges_online_time;
         Alcotest.test_case "eager ablation" `Quick test_eager_mode_costs_more ]);
      ("replay",
       [ Alcotest.test_case "matches original" `Quick test_replay_matches_original_region;
         Alcotest.test_case "deterministic" `Quick test_replay_deterministic;
         Alcotest.test_case "code versions agree" `Quick test_replay_code_versions_agree;
         Alcotest.test_case "loader collisions" `Quick test_loader_collision_tracking;
         Alcotest.test_case "isolated memory" `Quick test_replay_isolated_from_online_memory ]);
      ("verify",
       [ Alcotest.test_case "accepts safe" `Quick test_verification_map_accepts_safe;
         Alcotest.test_case "rejects fast-math" `Quick test_verification_map_rejects_fast_math;
         Alcotest.test_case "flags wrong output" `Quick test_verify_flags_wrong_output;
         Alcotest.test_case "flags crash" `Quick test_verify_flags_crash;
         Alcotest.test_case "flags hang" `Quick test_verify_flags_hang;
         Alcotest.test_case "float edge cases" `Quick test_verify_float_edge_cases;
         Alcotest.test_case "empty dirty-page set" `Quick test_verify_empty_dirty_page_set;
         Alcotest.test_case "empty write set rejects writer" `Quick
           test_verify_empty_write_set_rejects_writer;
         Alcotest.test_case "type profile" `Quick test_typeprof_collected ]);
      ("dirty-scan",
       [ Alcotest.test_case "pages_scanned counter" `Quick test_dirty_scan_counter;
         QCheck_alcotest.to_alcotest prop_dirty_diff_equals_full_scan ]);
      ("corpus",
       [ Alcotest.test_case "structure" `Quick test_corpus_structure;
         Alcotest.test_case "maps never conflated" `Quick
           test_corpus_maps_never_conflated;
         QCheck_alcotest.to_alcotest prop_corpus_input_plan_deterministic;
         Alcotest.test_case "recapture byte-identical" `Quick
           test_corpus_recapture_byte_identical;
         Alcotest.test_case "distinct references per app" `Quick
           test_corpus_distinct_references_per_scimark_app ]);
      ("storage",
       [ Alcotest.test_case "accounting" `Quick test_storage_accounting;
         Alcotest.test_case "store-backed template" `Quick
           test_store_backed_template_equivalent;
         Alcotest.test_case "corruption quarantines" `Quick
           test_store_corruption_quarantines_not_crashes ]) ]
